//! Behavioral (golden-model) FSM simulation.

use crate::model::{Fsm, StateId};

/// A behavioral simulator for an [`Fsm`] — the golden reference against
/// which lowered and hardened netlists are equivalence-checked.
///
/// Unlike the gate-level simulator, this one cannot experience faults: it
/// always follows the FSM's defined semantics, which is exactly the paper's
/// fault-free copy `FSM_F̄` in the security goal `φ_F(S, X, F_N) =?
/// φ_F̄(S, X, 0)` (§3.2).
///
/// # Example
///
/// ```
/// use scfi_fsm::{FsmBuilder, FsmSimulator, Guard};
///
/// let mut b = FsmBuilder::new("m");
/// let go = b.signal("go")?;
/// let idle = b.state("IDLE")?;
/// let run = b.state("RUN")?;
/// let busy = b.output("busy")?;
/// b.assert_output(run, busy);
/// b.transition(idle, run, Guard::if_set(go));
/// let fsm = b.finish()?;
///
/// let mut sim = FsmSimulator::new(&fsm);
/// assert_eq!(sim.state(), idle);
/// sim.step(&[true]);
/// assert_eq!(sim.state(), run);
/// assert_eq!(sim.outputs(), vec![true]);
/// # Ok::<(), scfi_fsm::FsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FsmSimulator<'f> {
    fsm: &'f Fsm,
    state: StateId,
    cycle: u64,
}

impl<'f> FsmSimulator<'f> {
    /// Starts at the reset state.
    pub fn new(fsm: &'f Fsm) -> Self {
        FsmSimulator {
            fsm,
            state: fsm.reset_state(),
            cycle: 0,
        }
    }

    /// The FSM under simulation.
    pub fn fsm(&self) -> &'f Fsm {
        self.fsm
    }

    /// Current state.
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Completed steps since construction/reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns to the reset state.
    pub fn reset(&mut self) {
        self.state = self.fsm.reset_state();
        self.cycle = 0;
    }

    /// Forces the current state (for lock-step scenarios).
    pub fn set_state(&mut self, s: StateId) {
        self.state = s;
    }

    /// Advances one step and returns the new state.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the FSM's signal count.
    pub fn step(&mut self, inputs: &[bool]) -> StateId {
        self.state = self.fsm.next_state(self.state, inputs);
        self.cycle += 1;
        self.state
    }

    /// Moore outputs asserted in the current state, indexed by
    /// [`OutputId`](crate::OutputId).
    pub fn outputs(&self) -> Vec<bool> {
        let mut out = vec![false; self.fsm.outputs().len()];
        for &o in self.fsm.asserted_outputs(self.state) {
            out[o.0] = true;
        }
        out
    }

    /// Runs a full input trace, returning the visited states (one entry per
    /// step, excluding the initial state).
    pub fn run(&mut self, trace: &[Vec<bool>]) -> Vec<StateId> {
        trace.iter().map(|inputs| self.step(inputs)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FsmBuilder, Guard};

    fn traffic() -> Fsm {
        let mut b = FsmBuilder::new("traffic");
        let tick = b.signal("tick").unwrap();
        let red = b.state("RED").unwrap();
        let green = b.state("GREEN").unwrap();
        let yellow = b.state("YELLOW").unwrap();
        let go = b.output("go").unwrap();
        b.assert_output(green, go);
        b.transition(red, green, Guard::if_set(tick));
        b.transition(green, yellow, Guard::if_set(tick));
        b.transition(yellow, red, Guard::if_set(tick));
        b.finish().unwrap()
    }

    #[test]
    fn cycles_through_states() {
        let f = traffic();
        let mut sim = FsmSimulator::new(&f);
        let states = sim.run(&[vec![true], vec![true], vec![true]]);
        let names: Vec<&str> = states.iter().map(|&s| f.state_name(s)).collect();
        assert_eq!(names, vec!["GREEN", "YELLOW", "RED"]);
        assert_eq!(sim.cycle(), 3);
    }

    #[test]
    fn holds_without_tick() {
        let f = traffic();
        let mut sim = FsmSimulator::new(&f);
        sim.run(&[vec![false], vec![false]]);
        assert_eq!(f.state_name(sim.state()), "RED");
    }

    #[test]
    fn outputs_follow_state() {
        let f = traffic();
        let mut sim = FsmSimulator::new(&f);
        assert_eq!(sim.outputs(), vec![false]);
        sim.step(&[true]);
        assert_eq!(sim.outputs(), vec![true]); // GREEN asserts go
        sim.step(&[true]);
        assert_eq!(sim.outputs(), vec![false]);
    }

    #[test]
    fn reset_and_set_state() {
        let f = traffic();
        let mut sim = FsmSimulator::new(&f);
        sim.step(&[true]);
        sim.reset();
        assert_eq!(sim.state(), f.reset_state());
        assert_eq!(sim.cycle(), 0);
        let yellow = f.state_by_name("YELLOW").unwrap();
        sim.set_state(yellow);
        assert_eq!(sim.state(), yellow);
    }
}
