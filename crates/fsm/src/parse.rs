//! A small text DSL for describing finite-state machines.
//!
//! Grammar (whitespace-insensitive, `//` line comments):
//!
//! ```text
//! fsm NAME {
//!   inputs a, b, c;          // 1-bit control signals
//!   outputs busy, done;      // Moore outputs
//!   reset IDLE;              // optional; defaults to the first state
//!   state IDLE {
//!     out busy;              // outputs asserted while in this state
//!     if a && !b -> RUN;     // prioritized guarded transitions
//!     goto IDLE;             // unconditional transition (lowest priority)
//!   }
//!   state RUN { ... }
//! }
//! ```

use crate::model::{Fsm, FsmBuilder, FsmError, Guard};

/// Parses the FSM DSL into a validated [`Fsm`].
///
/// # Errors
///
/// [`FsmError::Parse`] on syntax errors and [`FsmError::UnknownName`] when
/// a transition references an undeclared state or signal; both carry the
/// 1-based source line.
///
/// # Example
///
/// ```
/// let fsm = scfi_fsm::parse_fsm(
///     "fsm blink { inputs en; state OFF { if en -> ON; } state ON { if !en -> OFF; } }",
/// )?;
/// assert_eq!(fsm.name(), "blink");
/// assert_eq!(fsm.state_count(), 2);
/// # Ok::<(), scfi_fsm::FsmError>(())
/// ```
pub fn parse_fsm(text: &str) -> Result<Fsm, FsmError> {
    let tokens = tokenize(text)?;
    let ast = Parser {
        tokens: &tokens,
        pos: 0,
    }
    .parse_fsm()?;
    resolve(ast)
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LBrace,
    RBrace,
    Semi,
    Comma,
    Arrow,
    Bang,
    AndAnd,
}

#[derive(Clone, Debug)]
struct SpannedTok {
    tok: Tok,
    line: usize,
}

fn tokenize(text: &str) -> Result<Vec<SpannedTok>, FsmError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(err(line, "expected `//` comment"));
                }
            }
            '{' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::LBrace,
                    line,
                });
            }
            '}' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::RBrace,
                    line,
                });
            }
            ';' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Semi,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Comma,
                    line,
                });
            }
            '!' => {
                chars.next();
                out.push(SpannedTok {
                    tok: Tok::Bang,
                    line,
                });
            }
            '&' => {
                chars.next();
                if chars.next() != Some('&') {
                    return Err(err(line, "expected `&&`"));
                }
                out.push(SpannedTok {
                    tok: Tok::AndAnd,
                    line,
                });
            }
            '-' => {
                chars.next();
                if chars.next() != Some('>') {
                    return Err(err(line, "expected `->`"));
                }
                out.push(SpannedTok {
                    tok: Tok::Arrow,
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            other => return Err(err(line, &format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn err(line: usize, message: &str) -> FsmError {
    FsmError::Parse {
        line,
        message: message.to_string(),
    }
}

// ----- AST -------------------------------------------------------------------

#[derive(Debug)]
struct FsmAst {
    name: String,
    inputs: Vec<(String, usize)>,
    outputs: Vec<(String, usize)>,
    reset: Option<(String, usize)>,
    states: Vec<StateAst>,
}

#[derive(Debug)]
struct StateAst {
    name: String,
    outs: Vec<(String, usize)>,
    transitions: Vec<TransAst>,
}

#[derive(Debug)]
struct TransAst {
    line: usize,
    literals: Vec<(String, bool, usize)>,
    target: String,
}

struct Parser<'t> {
    tokens: &'t [SpannedTok],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn peek(&self) -> Option<&'t SpannedTok> {
        self.tokens.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek()
            .map(|t| t.line)
            .or_else(|| self.tokens.last().map(|t| t.line))
            .unwrap_or(1)
    }

    fn next(&mut self) -> Option<&'t SpannedTok> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<usize, FsmError> {
        let line = self.line();
        match self.next() {
            Some(t) if t.tok == *tok => Ok(t.line),
            Some(t) => Err(err(t.line, &format!("expected {what}, found {:?}", t.tok))),
            None => Err(err(line, &format!("expected {what}, found end of input"))),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, usize), FsmError> {
        let line = self.line();
        match self.next() {
            Some(SpannedTok {
                tok: Tok::Ident(s),
                line,
            }) => Ok((s.clone(), *line)),
            Some(t) => Err(err(t.line, &format!("expected {what}, found {:?}", t.tok))),
            None => Err(err(line, &format!("expected {what}, found end of input"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<usize, FsmError> {
        let (word, line) = self.expect_ident(&format!("`{kw}`"))?;
        if word == kw {
            Ok(line)
        } else {
            Err(err(line, &format!("expected `{kw}`, found `{word}`")))
        }
    }

    fn parse_fsm(mut self) -> Result<FsmAst, FsmError> {
        self.expect_keyword("fsm")?;
        let (name, _) = self.expect_ident("machine name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut ast = FsmAst {
            name,
            inputs: Vec::new(),
            outputs: Vec::new(),
            reset: None,
            states: Vec::new(),
        };
        loop {
            match self.peek() {
                Some(SpannedTok {
                    tok: Tok::RBrace, ..
                }) => {
                    self.next();
                    break;
                }
                Some(SpannedTok {
                    tok: Tok::Ident(kw),
                    line,
                }) => {
                    let (kw, line) = (kw.clone(), *line);
                    match kw.as_str() {
                        "inputs" => {
                            self.next();
                            self.parse_name_list(&mut ast.inputs)?;
                        }
                        "outputs" => {
                            self.next();
                            self.parse_name_list(&mut ast.outputs)?;
                        }
                        "reset" => {
                            self.next();
                            let target = self.expect_ident("reset state name")?;
                            self.expect(&Tok::Semi, "`;`")?;
                            ast.reset = Some(target);
                        }
                        "state" => {
                            self.next();
                            ast.states.push(self.parse_state()?);
                        }
                        _ => {
                            return Err(err(
                                line,
                                &format!(
                                    "expected `inputs`, `outputs`, `reset`, `state` or `}}`, found `{kw}`"
                                ),
                            ))
                        }
                    }
                }
                Some(t) => return Err(err(t.line, &format!("unexpected {:?}", t.tok))),
                None => return Err(err(self.line(), "unterminated `fsm` block")),
            }
        }
        if let Some(t) = self.peek() {
            return Err(err(t.line, "trailing tokens after `fsm` block"));
        }
        Ok(ast)
    }

    fn parse_name_list(&mut self, into: &mut Vec<(String, usize)>) -> Result<(), FsmError> {
        loop {
            into.push(self.expect_ident("identifier")?);
            match self.next() {
                Some(SpannedTok {
                    tok: Tok::Comma, ..
                }) => continue,
                Some(SpannedTok { tok: Tok::Semi, .. }) => return Ok(()),
                Some(t) => return Err(err(t.line, "expected `,` or `;` in name list")),
                None => return Err(err(self.line(), "unterminated name list")),
            }
        }
    }

    fn parse_state(&mut self) -> Result<StateAst, FsmError> {
        let (name, _line) = self.expect_ident("state name")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let mut state = StateAst {
            name,
            outs: Vec::new(),
            transitions: Vec::new(),
        };
        loop {
            match self.peek() {
                Some(SpannedTok {
                    tok: Tok::RBrace, ..
                }) => {
                    self.next();
                    return Ok(state);
                }
                Some(SpannedTok {
                    tok: Tok::Ident(kw),
                    line,
                }) => {
                    let (kw, line) = (kw.clone(), *line);
                    match kw.as_str() {
                        "out" => {
                            self.next();
                            self.parse_name_list(&mut state.outs)?;
                        }
                        "if" => {
                            self.next();
                            state.transitions.push(self.parse_if(line)?);
                        }
                        "goto" => {
                            self.next();
                            let (target, _) = self.expect_ident("target state")?;
                            self.expect(&Tok::Semi, "`;`")?;
                            state.transitions.push(TransAst {
                                line,
                                literals: Vec::new(),
                                target,
                            });
                        }
                        _ => {
                            return Err(err(
                                line,
                                &format!("expected `out`, `if`, `goto` or `}}`, found `{kw}`"),
                            ))
                        }
                    }
                }
                Some(t) => return Err(err(t.line, &format!("unexpected {:?}", t.tok))),
                None => return Err(err(self.line(), "unterminated `state` block")),
            }
        }
    }

    fn parse_if(&mut self, line: usize) -> Result<TransAst, FsmError> {
        let mut literals = Vec::new();
        loop {
            let negated = if matches!(self.peek(), Some(SpannedTok { tok: Tok::Bang, .. })) {
                self.next();
                true
            } else {
                false
            };
            let (name, lline) = self.expect_ident("signal name")?;
            literals.push((name, !negated, lline));
            match self.peek() {
                Some(SpannedTok {
                    tok: Tok::AndAnd, ..
                }) => {
                    self.next();
                }
                _ => break,
            }
        }
        self.expect(&Tok::Arrow, "`->`")?;
        let (target, _) = self.expect_ident("target state")?;
        self.expect(&Tok::Semi, "`;`")?;
        Ok(TransAst {
            line,
            literals,
            target,
        })
    }
}

// ----- resolution --------------------------------------------------------------

fn resolve(ast: FsmAst) -> Result<Fsm, FsmError> {
    let mut b = FsmBuilder::new(ast.name);
    for (name, _) in &ast.inputs {
        b.signal(name.clone())?;
    }
    for (name, _) in &ast.outputs {
        b.output(name.clone())?;
    }
    for s in &ast.states {
        b.state(s.name.clone())?;
    }
    for s in &ast.states {
        let sid = b.state_by_name(&s.name).expect("just declared");
        for (out, line) in &s.outs {
            // Outputs resolve against the declared output list.
            let Some(i) = ast.outputs.iter().position(|(n, _)| n == out) else {
                return Err(FsmError::UnknownName {
                    line: *line,
                    name: out.clone(),
                });
            };
            b.assert_output(sid, crate::model::OutputId(i));
        }
        for t in &s.transitions {
            let target = b.state_by_name(&t.target).ok_or(FsmError::UnknownName {
                line: t.line,
                name: t.target.clone(),
            })?;
            let mut lits = Vec::with_capacity(t.literals.len());
            for (name, value, lline) in &t.literals {
                let sig = b.signal_by_name(name).ok_or(FsmError::UnknownName {
                    line: *lline,
                    name: name.clone(),
                })?;
                lits.push((sig, *value));
            }
            let guard = Guard::new(lits)?;
            b.transition(sid, target, guard);
        }
    }
    if let Some((reset, line)) = &ast.reset {
        let rid = b.state_by_name(reset).ok_or(FsmError::UnknownName {
            line: *line,
            name: reset.clone(),
        })?;
        b.reset(rid);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOCK: &str = "
        // a tiny lock controller
        fsm lock {
          inputs key_ok, tamper;
          outputs open, alarm;
          reset LOCKED;
          state LOCKED {
            if key_ok && !tamper -> OPEN;
            if tamper -> ALARM;
          }
          state OPEN {
            out open;
            if tamper -> ALARM;
            if !key_ok -> LOCKED;
          }
          state ALARM { out alarm; goto ALARM; }
        }";

    #[test]
    fn parses_full_example() {
        let f = parse_fsm(LOCK).unwrap();
        assert_eq!(f.name(), "lock");
        assert_eq!(f.signals(), &["key_ok".to_string(), "tamper".to_string()]);
        assert_eq!(f.outputs().len(), 2);
        assert_eq!(f.state_count(), 3);
        assert_eq!(f.state_name(f.reset_state()), "LOCKED");
        // LOCKED: 2 transitions; OPEN: 2; ALARM: 1 unconditional goto.
        assert_eq!(f.transition_count(), 5);
        let alarm = f.state_by_name("ALARM").unwrap();
        assert!(f.transitions(alarm)[0].guard.is_always());
        assert_eq!(f.transitions(alarm)[0].target, alarm);
    }

    #[test]
    fn semantics_of_parsed_machine() {
        let f = parse_fsm(LOCK).unwrap();
        let locked = f.state_by_name("LOCKED").unwrap();
        let open = f.state_by_name("OPEN").unwrap();
        let alarm = f.state_by_name("ALARM").unwrap();
        assert_eq!(f.next_state(locked, &[true, false]), open);
        assert_eq!(f.next_state(locked, &[true, true]), alarm);
        assert_eq!(f.next_state(locked, &[false, false]), locked);
        assert_eq!(f.next_state(alarm, &[true, false]), alarm);
    }

    #[test]
    fn forward_references_allowed() {
        let f = parse_fsm("fsm f { state A { goto B; } state B { } }").unwrap();
        assert_eq!(f.state_count(), 2);
    }

    #[test]
    fn unknown_target_reports_line() {
        let e = parse_fsm("fsm f {\n state A {\n goto NOPE;\n }\n }").unwrap_err();
        match e {
            FsmError::UnknownName { line, name } => {
                assert_eq!(name, "NOPE");
                assert_eq!(line, 3);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn unknown_signal_reports_line() {
        let e = parse_fsm("fsm f { state A { if ghost -> A; } }").unwrap_err();
        assert!(matches!(e, FsmError::UnknownName { name, .. } if name == "ghost"));
    }

    #[test]
    fn unknown_output_rejected() {
        let e = parse_fsm("fsm f { state A { out nope; } }").unwrap_err();
        assert!(matches!(e, FsmError::UnknownName { name, .. } if name == "nope"));
    }

    #[test]
    fn syntax_errors_report_line() {
        let e = parse_fsm("fsm f {\n state A {\n if x ->\n }\n}").unwrap_err();
        assert!(matches!(
            e,
            FsmError::Parse { .. } | FsmError::UnknownName { .. }
        ));
        let e = parse_fsm("fsm f { state A { if x - A; } }").unwrap_err();
        assert!(matches!(e, FsmError::Parse { .. }));
        let e = parse_fsm("machine f {}").unwrap_err();
        assert!(matches!(e, FsmError::Parse { .. }));
        let e = parse_fsm("fsm f { state A { } } extra").unwrap_err();
        assert!(matches!(e, FsmError::Parse { .. }));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let f = parse_fsm("fsm f { // comment\n state A { // another\n } }").unwrap();
        assert_eq!(f.state_count(), 1);
    }

    #[test]
    fn contradictory_guard_surfaces() {
        let e = parse_fsm("fsm f { inputs x; state A { if x && !x -> A; } }").unwrap_err();
        assert!(matches!(e, FsmError::ContradictoryGuard { .. }));
    }

    #[test]
    fn reset_must_be_known() {
        let e = parse_fsm("fsm f { reset GHOST; state A { } }").unwrap_err();
        assert!(matches!(e, FsmError::UnknownName { name, .. } if name == "GHOST"));
    }

    #[test]
    fn empty_machine_rejected() {
        let e = parse_fsm("fsm f { }").unwrap_err();
        assert!(matches!(e, FsmError::Empty));
    }
}
