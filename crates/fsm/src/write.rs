//! Writing an [`Fsm`] back to the text DSL.

use std::fmt::Write as _;

use crate::model::Fsm;

impl Fsm {
    /// Renders the FSM as DSL text that [`parse_fsm`](crate::parse_fsm)
    /// accepts and that reconstructs an equivalent machine (same states,
    /// signals, outputs, reset, and transition semantics).
    ///
    /// # Example
    ///
    /// ```
    /// use scfi_fsm::parse_fsm;
    ///
    /// let fsm = parse_fsm("fsm t { inputs a; state P { if !a -> Q; } state Q { } }")?;
    /// let round = parse_fsm(&fsm.to_dsl())?;
    /// assert_eq!(round.state_count(), fsm.state_count());
    /// assert_eq!(round.next_state(round.reset_state(), &[false]),
    ///            fsm.next_state(fsm.reset_state(), &[false]));
    /// # Ok::<(), scfi_fsm::FsmError>(())
    /// ```
    pub fn to_dsl(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fsm {} {{", self.name());
        if !self.signals().is_empty() {
            let _ = writeln!(s, "  inputs {};", self.signals().join(", "));
        }
        if !self.outputs().is_empty() {
            let _ = writeln!(s, "  outputs {};", self.outputs().join(", "));
        }
        let _ = writeln!(s, "  reset {};", self.state_name(self.reset_state()));
        for state in self.states() {
            let _ = write!(s, "  state {} {{", self.state_name(state));
            let outs = self.asserted_outputs(state);
            if !outs.is_empty() {
                let names: Vec<&str> = outs.iter().map(|o| self.outputs()[o.0].as_str()).collect();
                let _ = write!(s, " out {};", names.join(", "));
            }
            for t in self.transitions(state) {
                if t.guard.is_always() {
                    let _ = write!(s, " goto {};", self.state_name(t.target));
                } else {
                    let lits: Vec<String> = t
                        .guard
                        .literals()
                        .iter()
                        .map(|&(sig, v)| {
                            format!("{}{}", if v { "" } else { "!" }, self.signals()[sig.0])
                        })
                        .collect();
                    let _ = write!(
                        s,
                        " if {} -> {};",
                        lits.join(" && "),
                        self.state_name(t.target)
                    );
                }
            }
            let _ = writeln!(s, " }}");
        }
        let _ = writeln!(s, "}}");
        s
    }
}

/// Renders `fsm` as DSL text that [`parse_fsm`](crate::parse_fsm) accepts —
/// the free-function counterpart of [`Fsm::to_dsl`], convenient for
/// `parse_fsm(&write_fsm(&f))` round-trip checks.
pub fn write_fsm(fsm: &Fsm) -> String {
    fsm.to_dsl()
}

#[cfg(test)]
mod tests {
    use crate::parse::parse_fsm;

    const LOCK: &str = "
        fsm lock {
          inputs key_ok, tamper;
          outputs open, alarm;
          reset LOCKED;
          state LOCKED { if key_ok && !tamper -> OPEN; if tamper -> ALARM; }
          state OPEN   { out open; if tamper -> ALARM; if !key_ok -> LOCKED; }
          state ALARM  { out alarm; goto ALARM; }
        }";

    #[test]
    fn round_trip_preserves_structure() {
        let fsm = parse_fsm(LOCK).unwrap();
        let text = fsm.to_dsl();
        let round = parse_fsm(&text).unwrap();
        assert_eq!(round.name(), fsm.name());
        assert_eq!(round.signals(), fsm.signals());
        assert_eq!(round.outputs(), fsm.outputs());
        assert_eq!(round.state_count(), fsm.state_count());
        assert_eq!(round.transition_count(), fsm.transition_count());
        assert_eq!(
            round.state_name(round.reset_state()),
            fsm.state_name(fsm.reset_state())
        );
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let fsm = parse_fsm(LOCK).unwrap();
        let round = parse_fsm(&fsm.to_dsl()).unwrap();
        for state in fsm.states() {
            for bits in 0..4u32 {
                let inputs = vec![bits & 1 == 1, bits & 2 == 2];
                assert_eq!(
                    round.next_state(state, &inputs),
                    fsm.next_state(state, &inputs),
                    "state {state:?} inputs {inputs:?}"
                );
            }
        }
    }

    #[test]
    fn benchmark_suite_round_trips() {
        // Light structural check over a machine with goto and multi-output
        // states.
        let text = "fsm m { inputs a; outputs x, y; state P { out x, y; goto Q; } state Q { if a -> P; } }";
        let fsm = parse_fsm(text).unwrap();
        let round = parse_fsm(&fsm.to_dsl()).unwrap();
        assert_eq!(round.asserted_outputs(round.states()[0]).len(), 2);
        assert!(round.transitions(round.states()[0])[0].guard.is_always());
    }

    #[test]
    fn dsl_is_human_readable() {
        let fsm = parse_fsm(LOCK).unwrap();
        let text = fsm.to_dsl();
        assert!(text.contains("fsm lock {"));
        assert!(text.contains("inputs key_ok, tamper;"));
        assert!(text.contains("if key_ok && !tamper -> OPEN;"));
        assert!(text.contains("out alarm;"));
    }
}
