//! FSM data model and builder.

use std::collections::HashMap;
use std::fmt;

/// Identifies a state within an [`Fsm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// Identifies a 1-bit control signal within an [`Fsm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub usize);

/// Identifies a Moore output within an [`Fsm`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutputId(pub usize);

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Debug for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl fmt::Debug for OutputId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "y{}", self.0)
    }
}

/// A conjunction of control-signal literals guarding a transition.
///
/// The empty guard is always true (an unconditional transition). Guards are
/// evaluated against a full input valuation; a transition fires when every
/// literal matches.
///
/// # Example
///
/// ```
/// use scfi_fsm::{Guard, SignalId};
///
/// let g = Guard::new(vec![(SignalId(0), true), (SignalId(2), false)]).unwrap();
/// assert!(g.eval(&[true, true, false]));
/// assert!(!g.eval(&[true, true, true]));
/// assert!(Guard::always().eval(&[false, false, false]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Sorted, deduplicated literals `(signal, required_value)`.
    literals: Vec<(SignalId, bool)>,
}

impl Guard {
    /// The always-true guard.
    pub fn always() -> Guard {
        Guard {
            literals: Vec::new(),
        }
    }

    /// Builds a guard from literals, deduplicating repeats.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::ContradictoryGuard`] if the same signal appears
    /// with both polarities (the guard would be unsatisfiable).
    pub fn new(mut literals: Vec<(SignalId, bool)>) -> Result<Guard, FsmError> {
        literals.sort_by_key(|&(s, v)| (s, v));
        literals.dedup();
        for pair in literals.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(FsmError::ContradictoryGuard { signal: pair[0].0 });
            }
        }
        Ok(Guard { literals })
    }

    /// Single-literal guard requiring `signal` high.
    pub fn if_set(signal: SignalId) -> Guard {
        Guard {
            literals: vec![(signal, true)],
        }
    }

    /// Single-literal guard requiring `signal` low.
    pub fn if_clear(signal: SignalId) -> Guard {
        Guard {
            literals: vec![(signal, false)],
        }
    }

    /// The literals, sorted by signal.
    pub fn literals(&self) -> &[(SignalId, bool)] {
        &self.literals
    }

    /// Returns `true` for the unconditional guard.
    pub fn is_always(&self) -> bool {
        self.literals.is_empty()
    }

    /// Evaluates against a full input valuation (indexed by signal).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a signal index out of range.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        self.literals.iter().all(|&(s, v)| inputs[s.0] == v)
    }

    /// Returns `true` if every valuation satisfying `self` also satisfies
    /// `other` (literal-set inclusion: `other ⊆ self`).
    pub fn implies(&self, other: &Guard) -> bool {
        other.literals.iter().all(|l| self.literals.contains(l))
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_always() {
            return write!(f, "true");
        }
        let parts: Vec<String> = self
            .literals
            .iter()
            .map(|&(s, v)| format!("{}x{}", if v { "" } else { "!" }, s.0))
            .collect();
        write!(f, "{}", parts.join(" && "))
    }
}

/// One prioritized outgoing transition of a state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transition {
    /// Condition for taking the transition.
    pub guard: Guard,
    /// Destination state.
    pub target: StateId,
}

/// Per-state definition: name, prioritized transitions, asserted Moore
/// outputs.
#[derive(Clone, Debug)]
pub(crate) struct StateDef {
    pub(crate) name: String,
    pub(crate) transitions: Vec<Transition>,
    pub(crate) outputs: Vec<OutputId>,
}

/// Errors from FSM construction and validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsmError {
    /// Two states share a name.
    DuplicateState(String),
    /// Two signals share a name.
    DuplicateSignal(String),
    /// Two outputs share a name.
    DuplicateOutput(String),
    /// The FSM has no states.
    Empty,
    /// A guard requires a signal to be both high and low.
    ContradictoryGuard {
        /// The doubly-constrained signal.
        signal: SignalId,
    },
    /// A parse error in the FSM DSL, with a 1-based line number.
    Parse {
        /// Line where the error was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A DSL transition references an undeclared state or signal.
    UnknownName {
        /// Line of the reference.
        line: usize,
        /// The unresolved identifier.
        name: String,
    },
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::DuplicateState(n) => write!(f, "duplicate state name {n}"),
            FsmError::DuplicateSignal(n) => write!(f, "duplicate signal name {n}"),
            FsmError::DuplicateOutput(n) => write!(f, "duplicate output name {n}"),
            FsmError::Empty => write!(f, "state machine has no states"),
            FsmError::ContradictoryGuard { signal } => {
                write!(f, "guard requires signal x{} both high and low", signal.0)
            }
            FsmError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            FsmError::UnknownName { line, name } => {
                write!(f, "unknown state or signal `{name}` at line {line}")
            }
        }
    }
}

impl std::error::Error for FsmError {}

/// An immutable, validated finite-state machine.
///
/// Build one with [`FsmBuilder`] or [`parse_fsm`](crate::parse_fsm).
/// Semantics: in state `s` under input valuation `x`, the first transition
/// of `s` whose guard matches fires; if none matches the FSM stays in `s`
/// (the implicit self-loop the paper's `SN = S0; if (…) …` idiom creates).
#[derive(Clone, Debug)]
pub struct Fsm {
    pub(crate) name: String,
    pub(crate) signals: Vec<String>,
    pub(crate) outputs: Vec<String>,
    pub(crate) states: Vec<StateDef>,
    pub(crate) reset: StateId,
}

impl Fsm {
    /// FSM name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Control signal names, indexed by [`SignalId`].
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// Moore output names, indexed by [`OutputId`].
    pub fn outputs(&self) -> &[String] {
        &self.outputs
    }

    /// State ids, in declaration order.
    pub fn states(&self) -> Vec<StateId> {
        (0..self.states.len()).map(StateId).collect()
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// A state's name.
    pub fn state_name(&self, s: StateId) -> &str {
        &self.states[s.0].name
    }

    /// Looks up a state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// The reset state.
    pub fn reset_state(&self) -> StateId {
        self.reset
    }

    /// Prioritized transitions out of a state.
    pub fn transitions(&self, s: StateId) -> &[Transition] {
        &self.states[s.0].transitions
    }

    /// Moore outputs asserted in a state.
    pub fn asserted_outputs(&self, s: StateId) -> &[OutputId] {
        &self.states[s.0].outputs
    }

    /// Computes the next state for `(state, inputs)` — the behavioral `φ`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the signal count.
    pub fn next_state(&self, s: StateId, inputs: &[bool]) -> StateId {
        assert_eq!(inputs.len(), self.signals.len(), "input count mismatch");
        for t in &self.states[s.0].transitions {
            if t.guard.eval(inputs) {
                return t.target;
            }
        }
        s
    }

    /// States unreachable from reset (BFS over all transitions, including
    /// implicit stays).
    pub fn unreachable_states(&self) -> Vec<StateId> {
        let mut seen = vec![false; self.states.len()];
        let mut queue = vec![self.reset];
        seen[self.reset.0] = true;
        while let Some(s) = queue.pop() {
            for t in &self.states[s.0].transitions {
                if !seen[t.target.0] {
                    seen[t.target.0] = true;
                    queue.push(t.target);
                }
            }
        }
        (0..self.states.len())
            .filter(|&i| !seen[i])
            .map(StateId)
            .collect()
    }

    /// Transitions that can never fire because an earlier transition of the
    /// same state matches whenever they do. Returns `(state, transition
    /// index)` pairs.
    pub fn shadowed_transitions(&self) -> Vec<(StateId, usize)> {
        let mut out = Vec::new();
        for (si, st) in self.states.iter().enumerate() {
            for j in 1..st.transitions.len() {
                let tj = &st.transitions[j];
                if st.transitions[..j]
                    .iter()
                    .any(|ti| tj.guard.implies(&ti.guard))
                {
                    out.push((StateId(si), j));
                }
            }
        }
        out
    }

    /// Total number of explicit transitions.
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }
}

/// Incrementally builds an [`Fsm`].
///
/// # Example
///
/// ```
/// use scfi_fsm::{FsmBuilder, Guard};
///
/// let mut b = FsmBuilder::new("blinker");
/// let en = b.signal("en")?;
/// let off = b.state("OFF")?;
/// let on = b.state("ON")?;
/// let lit = b.output("lit")?;
/// b.assert_output(on, lit);
/// b.transition(off, on, Guard::if_set(en));
/// b.transition(on, off, Guard::if_clear(en));
/// let fsm = b.finish()?;
/// assert_eq!(fsm.reset_state(), off); // defaults to the first state
/// # Ok::<(), scfi_fsm::FsmError>(())
/// ```
#[derive(Debug)]
pub struct FsmBuilder {
    name: String,
    signals: Vec<String>,
    signal_index: HashMap<String, SignalId>,
    outputs: Vec<String>,
    output_index: HashMap<String, OutputId>,
    states: Vec<StateDef>,
    state_index: HashMap<String, StateId>,
    reset: Option<StateId>,
}

impl FsmBuilder {
    /// Starts a new FSM definition.
    pub fn new(name: impl Into<String>) -> Self {
        FsmBuilder {
            name: name.into(),
            signals: Vec::new(),
            signal_index: HashMap::new(),
            outputs: Vec::new(),
            output_index: HashMap::new(),
            states: Vec::new(),
            state_index: HashMap::new(),
            reset: None,
        }
    }

    /// Declares a 1-bit control signal.
    ///
    /// # Errors
    ///
    /// [`FsmError::DuplicateSignal`] if the name is taken.
    pub fn signal(&mut self, name: impl Into<String>) -> Result<SignalId, FsmError> {
        let name = name.into();
        if self.signal_index.contains_key(&name) {
            return Err(FsmError::DuplicateSignal(name));
        }
        let id = SignalId(self.signals.len());
        self.signal_index.insert(name.clone(), id);
        self.signals.push(name);
        Ok(id)
    }

    /// Declares a Moore output.
    ///
    /// # Errors
    ///
    /// [`FsmError::DuplicateOutput`] if the name is taken.
    pub fn output(&mut self, name: impl Into<String>) -> Result<OutputId, FsmError> {
        let name = name.into();
        if self.output_index.contains_key(&name) {
            return Err(FsmError::DuplicateOutput(name));
        }
        let id = OutputId(self.outputs.len());
        self.output_index.insert(name.clone(), id);
        self.outputs.push(name);
        Ok(id)
    }

    /// Declares a state.
    ///
    /// # Errors
    ///
    /// [`FsmError::DuplicateState`] if the name is taken.
    pub fn state(&mut self, name: impl Into<String>) -> Result<StateId, FsmError> {
        let name = name.into();
        if self.state_index.contains_key(&name) {
            return Err(FsmError::DuplicateState(name));
        }
        let id = StateId(self.states.len());
        self.state_index.insert(name.clone(), id);
        self.states.push(StateDef {
            name,
            transitions: Vec::new(),
            outputs: Vec::new(),
        });
        Ok(id)
    }

    /// Looks up a declared signal by name.
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.signal_index.get(name).copied()
    }

    /// Looks up a declared state by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_index.get(name).copied()
    }

    /// Appends a transition (priority = insertion order).
    pub fn transition(&mut self, from: StateId, to: StateId, guard: Guard) {
        self.states[from.0]
            .transitions
            .push(Transition { guard, target: to });
    }

    /// Marks a Moore output as asserted in a state.
    pub fn assert_output(&mut self, state: StateId, output: OutputId) {
        if !self.states[state.0].outputs.contains(&output) {
            self.states[state.0].outputs.push(output);
        }
    }

    /// Sets the reset state (defaults to the first declared state).
    pub fn reset(&mut self, state: StateId) {
        self.reset = Some(state);
    }

    /// Validates and freezes the FSM.
    ///
    /// # Errors
    ///
    /// [`FsmError::Empty`] if no states were declared.
    pub fn finish(self) -> Result<Fsm, FsmError> {
        if self.states.is_empty() {
            return Err(FsmError::Empty);
        }
        Ok(Fsm {
            name: self.name,
            signals: self.signals,
            outputs: self.outputs,
            states: self.states,
            reset: self.reset.unwrap_or(StateId(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state() -> Fsm {
        let mut b = FsmBuilder::new("t");
        let go = b.signal("go").unwrap();
        let a = b.state("A").unwrap();
        let c = b.state("B").unwrap();
        b.transition(a, c, Guard::if_set(go));
        b.transition(c, a, Guard::if_clear(go));
        b.finish().unwrap()
    }

    #[test]
    fn next_state_follows_guards() {
        let f = two_state();
        let a = f.state_by_name("A").unwrap();
        let c = f.state_by_name("B").unwrap();
        assert_eq!(f.next_state(a, &[true]), c);
        assert_eq!(f.next_state(a, &[false]), a); // implicit stay
        assert_eq!(f.next_state(c, &[false]), a);
        assert_eq!(f.next_state(c, &[true]), c);
    }

    #[test]
    fn priority_first_match_wins() {
        let mut b = FsmBuilder::new("p");
        let x0 = b.signal("x0").unwrap();
        let x1 = b.signal("x1").unwrap();
        let s = b.state("S").unwrap();
        let t1 = b.state("T1").unwrap();
        let t2 = b.state("T2").unwrap();
        b.transition(s, t1, Guard::if_set(x0));
        b.transition(s, t2, Guard::if_set(x1));
        let f = b.finish().unwrap();
        // Both guards true → first wins.
        assert_eq!(f.next_state(s, &[true, true]), t1);
        assert_eq!(f.next_state(s, &[false, true]), t2);
    }

    #[test]
    fn guards_dedupe_and_reject_contradiction() {
        let g = Guard::new(vec![(SignalId(1), true), (SignalId(1), true)]).unwrap();
        assert_eq!(g.literals().len(), 1);
        let err = Guard::new(vec![(SignalId(1), true), (SignalId(1), false)]).unwrap_err();
        assert!(matches!(
            err,
            FsmError::ContradictoryGuard {
                signal: SignalId(1)
            }
        ));
    }

    #[test]
    fn guard_implication() {
        let narrow = Guard::new(vec![(SignalId(0), true), (SignalId(1), false)]).unwrap();
        let broad = Guard::if_set(SignalId(0));
        assert!(narrow.implies(&broad));
        assert!(!broad.implies(&narrow));
        assert!(narrow.implies(&Guard::always()));
    }

    #[test]
    fn shadowed_transition_detection() {
        let mut b = FsmBuilder::new("sh");
        let x0 = b.signal("x0").unwrap();
        let x1 = b.signal("x1").unwrap();
        let s = b.state("S").unwrap();
        let t = b.state("T").unwrap();
        b.transition(s, t, Guard::if_set(x0));
        // Narrower guard after broader one → never fires.
        b.transition(s, t, Guard::new(vec![(x0, true), (x1, true)]).unwrap());
        let f = b.finish().unwrap();
        assert_eq!(f.shadowed_transitions(), vec![(s, 1)]);
    }

    #[test]
    fn unreachable_states_found() {
        let mut b = FsmBuilder::new("u");
        let a = b.state("A").unwrap();
        let c = b.state("B").unwrap();
        let orphan = b.state("ORPHAN").unwrap();
        b.transition(a, c, Guard::always());
        let _ = orphan;
        let f = b.finish().unwrap();
        assert_eq!(f.unreachable_states(), vec![StateId(2)]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = FsmBuilder::new("d");
        b.state("A").unwrap();
        assert!(matches!(b.state("A"), Err(FsmError::DuplicateState(_))));
        b.signal("x").unwrap();
        assert!(matches!(b.signal("x"), Err(FsmError::DuplicateSignal(_))));
        b.output("y").unwrap();
        assert!(matches!(b.output("y"), Err(FsmError::DuplicateOutput(_))));
    }

    #[test]
    fn empty_fsm_rejected() {
        assert!(matches!(
            FsmBuilder::new("e").finish(),
            Err(FsmError::Empty)
        ));
    }

    #[test]
    fn moore_outputs_recorded() {
        let mut b = FsmBuilder::new("m");
        let s = b.state("S").unwrap();
        let y = b.output("busy").unwrap();
        b.assert_output(s, y);
        b.assert_output(s, y); // idempotent
        let f = b.finish().unwrap();
        assert_eq!(f.asserted_outputs(s), &[y]);
        assert_eq!(f.outputs(), &["busy".to_string()]);
    }

    #[test]
    fn reset_defaults_to_first_state() {
        let f = two_state();
        assert_eq!(f.reset_state(), StateId(0));
    }

    #[test]
    fn error_messages_are_meaningful() {
        assert!(FsmError::DuplicateState("X".into())
            .to_string()
            .contains("X"));
        assert!(FsmError::Parse {
            line: 3,
            message: "boom".into()
        }
        .to_string()
        .contains("line 3"));
    }

    #[test]
    fn transition_count_sums_all_states() {
        let f = two_state();
        assert_eq!(f.transition_count(), 2);
    }
}
