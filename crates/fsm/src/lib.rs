//! Finite-state machine modeling for the SCFI reproduction.
//!
//! The paper describes an FSM as the 5-tuple `{S, X, Y, φ, λ}` (§2.2): a
//! state set, 1-bit control signals, Moore outputs, a next-state function
//! and an output function, with the execution flow captured by a
//! control-flow graph (CFG) of valid `{S_C, X}` transitions (Fig. 2).
//!
//! This crate provides that model plus everything the hardening pass needs
//! around it:
//!
//! * [`Fsm`] / [`FsmBuilder`] — states, prioritized guarded transitions
//!   (`if/else-if` chains as in the paper's Fig. 4 RTL), Moore outputs,
//!   validation (shadowed transitions, unreachable states, contradictory
//!   guards),
//! * [`Cfg`] — the extracted control-flow graph, including the implicit
//!   "stay" edges that an `if/else-if` chain creates,
//! * [`FsmSimulator`] — a behavioral reference simulator used as the golden
//!   model in equivalence checks,
//! * [`parse_fsm`] / [`write_fsm`] — a small text DSL for describing FSMs
//!   and the writer that round-trips an [`Fsm`] back to it,
//! * [`lower_unprotected`] — lowering to a binary-encoded gate-level
//!   netlist, the baseline circuit that both Table 1's "unprotected" column
//!   and the redundancy baseline build on.
//!
//! # Example
//!
//! ```
//! use scfi_fsm::parse_fsm;
//!
//! let fsm = parse_fsm(
//!     "fsm lock {
//!        inputs key_ok, tamper;
//!        outputs open;
//!        reset LOCKED;
//!        state LOCKED { if key_ok && !tamper -> OPEN; }
//!        state OPEN   { out open; if tamper -> LOCKED; }
//!      }",
//! )?;
//! assert_eq!(fsm.states().len(), 2);
//! let cfg = fsm.cfg();
//! assert_eq!(cfg.edges().len(), 4); // 2 explicit + 2 implicit stay edges
//! # Ok::<(), scfi_fsm::FsmError>(())
//! ```

mod cfg;
mod lower;
mod model;
mod parse;
mod sim;
mod write;

pub use cfg::{Cfg, CfgEdge, EdgeKind};
pub use lower::{lower_unprotected, LoweredFsm};
pub use model::{Fsm, FsmBuilder, FsmError, Guard, OutputId, SignalId, StateId, Transition};
pub use parse::parse_fsm;
pub use sim::FsmSimulator;
pub use write::write_fsm;
