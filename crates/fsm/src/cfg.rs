//! Control-flow graph extraction.

use std::fmt;

use crate::model::{Fsm, Guard, StateId};

/// What kind of CFG edge this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// An explicit transition (index into the state's transition list).
    Explicit(usize),
    /// The implicit self-loop taken when no explicit guard matches — the
    /// `SN = S0;` default assignment in the paper's Fig. 4 idiom.
    ImplicitStay,
}

/// One edge of the control-flow graph: a distinct `{S_C, X}` condition
/// class and its destination.
///
/// SCFI assigns each CFG edge its own modifier at synthesis time (§5.1), so
/// edges — not just `(from, to)` pairs — are the unit the hardening pass
/// iterates over. Two explicit transitions between the same states with
/// different guards are distinct edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CfgEdge {
    /// Source state.
    pub from: StateId,
    /// Destination state (equals `from` for implicit stays).
    pub to: StateId,
    /// Explicit transition or implicit stay.
    pub kind: EdgeKind,
    /// The guard of the explicit transition; `Guard::always()` stands in
    /// for the (negated-disjunction) residual condition of an implicit
    /// stay, whose exact predicate is "no explicit guard matched".
    pub guard: Guard,
}

impl CfgEdge {
    /// Position of this edge within its source state's outgoing-edge list.
    /// Explicit transitions keep their priority index; the implicit stay is
    /// last.
    pub fn local_index(&self, fsm: &Fsm) -> usize {
        match self.kind {
            EdgeKind::Explicit(i) => i,
            EdgeKind::ImplicitStay => fsm.transitions(self.from).len(),
        }
    }
}

/// The control-flow graph of an [`Fsm`]: every valid transition `t ∈ CFG`,
/// including implicit stays.
///
/// # Example
///
/// ```
/// use scfi_fsm::{FsmBuilder, Guard};
///
/// let mut b = FsmBuilder::new("m");
/// let go = b.signal("go")?;
/// let a = b.state("A")?;
/// let c = b.state("B")?;
/// b.transition(a, c, Guard::if_set(go));
/// b.transition(c, a, Guard::always());
/// let fsm = b.finish()?;
/// let cfg = fsm.cfg();
/// // A: explicit + implicit stay; B: unconditional explicit only.
/// assert_eq!(cfg.out_edges(a).len(), 2);
/// assert_eq!(cfg.out_edges(c).len(), 1);
/// # Ok::<(), scfi_fsm::FsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Cfg {
    edges: Vec<CfgEdge>,
    /// Edge indices grouped by source state.
    by_state: Vec<Vec<usize>>,
}

impl Fsm {
    /// Extracts the control-flow graph.
    ///
    /// A state receives an implicit-stay edge unless one of its explicit
    /// transitions is unconditional (which makes the residual condition
    /// empty).
    pub fn cfg(&self) -> Cfg {
        let mut edges = Vec::new();
        let mut by_state = vec![Vec::new(); self.state_count()];
        for s in self.states() {
            let ts = self.transitions(s);
            for (i, t) in ts.iter().enumerate() {
                by_state[s.0].push(edges.len());
                edges.push(CfgEdge {
                    from: s,
                    to: t.target,
                    kind: EdgeKind::Explicit(i),
                    guard: t.guard.clone(),
                });
            }
            let has_unconditional = ts.iter().any(|t| t.guard.is_always());
            if !has_unconditional {
                by_state[s.0].push(edges.len());
                edges.push(CfgEdge {
                    from: s,
                    to: s,
                    kind: EdgeKind::ImplicitStay,
                    guard: Guard::always(),
                });
            }
        }
        Cfg { edges, by_state }
    }
}

impl Cfg {
    /// All edges, ordered by source state and priority.
    pub fn edges(&self) -> &[CfgEdge] {
        &self.edges
    }

    /// Outgoing edges (as indices into [`Cfg::edges`]) of a state.
    pub fn out_edge_indices(&self, s: StateId) -> &[usize] {
        &self.by_state[s.0]
    }

    /// Outgoing edges of a state.
    pub fn out_edges(&self, s: StateId) -> Vec<&CfgEdge> {
        self.by_state[s.0].iter().map(|&i| &self.edges[i]).collect()
    }

    /// The edge the FSM takes from `s` under `inputs`: the first explicit
    /// edge whose guard matches, otherwise the implicit stay.
    ///
    /// Returns an index into [`Cfg::edges`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than a referenced signal index.
    pub fn matched_edge(&self, s: StateId, inputs: &[bool]) -> usize {
        for &ei in &self.by_state[s.0] {
            let e = &self.edges[ei];
            match e.kind {
                EdgeKind::Explicit(_) if e.guard.eval(inputs) => return ei,
                EdgeKind::ImplicitStay => return ei,
                _ => {}
            }
        }
        unreachable!("every state has a terminal edge (unconditional or implicit stay)")
    }

    /// The largest number of outgoing edges any state has — the number of
    /// distinct condition-class codewords the control-signal encoding needs.
    pub fn max_out_degree(&self) -> usize {
        self.by_state.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of edges (the paper's §6.4 "FSM with 14 state
    /// transitions" counts these).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when the CFG has no edges (impossible for a valid
    /// FSM, provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Seeded random protocol walks: for every edge, one connected walk of
    /// `depth` edges starting with that edge (successors drawn uniformly
    /// from the target state's outgoing edges via xorshift64*).
    ///
    /// Walks are the scenario substrate for multi-cycle fault campaigns: a
    /// walk models a `depth`-step protocol (e.g. a secure-boot handshake)
    /// whose individual transitions an attacker may glitch.
    ///
    /// Each returned walk is a sequence of indices into [`Cfg::edges`] with
    /// `edges[w[i]].to == edges[w[i + 1]].from`. Deterministic in `seed`.
    ///
    /// # Example
    ///
    /// ```
    /// use scfi_fsm::parse_fsm;
    ///
    /// let fsm = parse_fsm(
    ///     "fsm m { inputs go; state A { if go -> B; } state B { goto A; } }",
    /// )?;
    /// let cfg = fsm.cfg();
    /// let walks = cfg.random_walks(3, 0x5EED);
    /// assert_eq!(walks.len(), cfg.len()); // one walk per starting edge
    /// for (start, walk) in walks.iter().enumerate() {
    ///     assert_eq!(walk[0], start);
    ///     assert_eq!(walk.len(), 3);
    ///     for pair in walk.windows(2) {
    ///         // Connected head to tail: each edge ends where the next begins.
    ///         assert_eq!(cfg.edges()[pair[0]].to, cfg.edges()[pair[1]].from);
    ///     }
    /// }
    /// # Ok::<(), scfi_fsm::FsmError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn random_walks(&self, depth: usize, seed: u64) -> Vec<Vec<usize>> {
        self.random_walks_where(depth, seed, |_| true)
    }

    /// [`Cfg::random_walks`] restricted to edges satisfying `allowed`:
    /// walks start at every allowed edge and successors are drawn from the
    /// allowed outgoing edges only. A state whose outgoing edges are all
    /// filtered out truncates the walk there (every state keeps at least
    /// its terminal edge under the filters used in practice, so full-depth
    /// walks are the norm).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn random_walks_where(
        &self,
        depth: usize,
        seed: u64,
        allowed: impl Fn(usize) -> bool,
    ) -> Vec<Vec<usize>> {
        assert!(depth > 0, "protocol walks need at least one edge");
        let mut rng = seed.max(1); // xorshift state must be non-zero
        let mut next = move || {
            rng ^= rng >> 12;
            rng ^= rng << 25;
            rng ^= rng >> 27;
            rng.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut walks = Vec::new();
        for start in 0..self.edges.len() {
            if !allowed(start) {
                continue;
            }
            let mut walk = Vec::with_capacity(depth);
            walk.push(start);
            let mut at = self.edges[start].to;
            while walk.len() < depth {
                let choices: Vec<usize> = self.by_state[at.0]
                    .iter()
                    .copied()
                    .filter(|&e| allowed(e))
                    .collect();
                let Some(&e) = choices.get((next() % choices.len().max(1) as u64) as usize) else {
                    break;
                };
                walk.push(e);
                at = self.edges[e].to;
            }
            walks.push(walk);
        }
        walks
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cfg with {} edges:", self.edges.len())?;
        for e in &self.edges {
            writeln!(
                f,
                "  S{} -> S{} [{}]",
                e.from.0,
                e.to.0,
                match e.kind {
                    EdgeKind::Explicit(i) => format!("#{i} {:?}", e.guard),
                    EdgeKind::ImplicitStay => "stay".to_string(),
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FsmBuilder;

    /// The paper's Figure 2 CFG: S0→S1 (x0), S0→S2 (x1), S1→S3 (x2),
    /// S2→S3 (x3), S3→S0 (x4), S2→S2 etc. We model the explicit subset.
    fn fig2() -> Fsm {
        let mut b = FsmBuilder::new("fig2");
        let x: Vec<_> = (0..5).map(|i| b.signal(format!("x{i}")).unwrap()).collect();
        let s0 = b.state("S0").unwrap();
        let s1 = b.state("S1").unwrap();
        let s2 = b.state("S2").unwrap();
        let s3 = b.state("S3").unwrap();
        b.transition(s0, s1, Guard::if_set(x[0]));
        b.transition(s0, s2, Guard::if_set(x[1]));
        b.transition(s1, s3, Guard::if_set(x[2]));
        b.transition(s2, s3, Guard::if_set(x[3]));
        b.transition(s3, s0, Guard::if_set(x[4]));
        b.finish().unwrap()
    }

    #[test]
    fn edge_counts_include_implicit_stays() {
        let f = fig2();
        let cfg = f.cfg();
        // 5 explicit + 4 implicit stays.
        assert_eq!(cfg.len(), 9);
        assert_eq!(cfg.max_out_degree(), 3); // S0: two explicit + stay
        assert!(!cfg.is_empty());
    }

    #[test]
    fn unconditional_transition_suppresses_stay() {
        let mut b = FsmBuilder::new("u");
        let a = b.state("A").unwrap();
        let c = b.state("B").unwrap();
        b.transition(a, c, Guard::always());
        let f = b.finish().unwrap();
        let cfg = f.cfg();
        assert_eq!(cfg.out_edges(a).len(), 1);
        assert_eq!(cfg.out_edges(c).len(), 1); // just the stay
        assert_eq!(cfg.out_edges(c)[0].kind, EdgeKind::ImplicitStay);
    }

    #[test]
    fn matched_edge_respects_priority() {
        let f = fig2();
        let cfg = f.cfg();
        let s0 = f.state_by_name("S0").unwrap();
        // x0 and x1 both high → first transition (to S1).
        let e = &cfg.edges()[cfg.matched_edge(s0, &[true, true, false, false, false])];
        assert_eq!(e.to, f.state_by_name("S1").unwrap());
        // Only x1 → S2.
        let e = &cfg.edges()[cfg.matched_edge(s0, &[false, true, false, false, false])];
        assert_eq!(e.to, f.state_by_name("S2").unwrap());
        // Nothing → stay.
        let e = &cfg.edges()[cfg.matched_edge(s0, &[false; 5])];
        assert_eq!(e.kind, EdgeKind::ImplicitStay);
        assert_eq!(e.to, s0);
    }

    #[test]
    fn matched_edge_agrees_with_next_state() {
        let f = fig2();
        let cfg = f.cfg();
        for s in f.states() {
            for bits in 0..32u32 {
                let inputs: Vec<bool> = (0..5).map(|i| (bits >> i) & 1 == 1).collect();
                let e = &cfg.edges()[cfg.matched_edge(s, &inputs)];
                assert_eq!(e.to, f.next_state(s, &inputs));
            }
        }
    }

    #[test]
    fn local_index_orders_edges() {
        let f = fig2();
        let cfg = f.cfg();
        let s0 = f.state_by_name("S0").unwrap();
        let locals: Vec<usize> = cfg
            .out_edges(s0)
            .iter()
            .map(|e| e.local_index(&f))
            .collect();
        assert_eq!(locals, vec![0, 1, 2]);
    }

    #[test]
    fn display_lists_edges() {
        let f = fig2();
        let text = f.cfg().to_string();
        assert!(text.contains("S0 -> S1"));
        assert!(text.contains("stay"));
    }

    #[test]
    fn random_walks_are_connected_and_cover_every_edge() {
        let f = fig2();
        let cfg = f.cfg();
        for depth in [1, 3, 7] {
            let walks = cfg.random_walks(depth, 0x5EED);
            assert_eq!(walks.len(), cfg.len(), "one walk per starting edge");
            for (start, walk) in walks.iter().enumerate() {
                assert_eq!(walk[0], start);
                assert_eq!(walk.len(), depth);
                for pair in walk.windows(2) {
                    assert_eq!(
                        cfg.edges()[pair[0]].to,
                        cfg.edges()[pair[1]].from,
                        "walk must be connected"
                    );
                }
            }
        }
    }

    #[test]
    fn random_walks_are_deterministic_per_seed() {
        let cfg = fig2().cfg();
        assert_eq!(cfg.random_walks(5, 42), cfg.random_walks(5, 42));
        assert_ne!(cfg.random_walks(5, 42), cfg.random_walks(5, 43));
    }

    #[test]
    fn filtered_walks_avoid_disallowed_edges() {
        let cfg = fig2().cfg();
        // Forbid edge 0; walks must neither start at nor traverse it.
        let walks = cfg.random_walks_where(4, 7, |e| e != 0);
        assert_eq!(walks.len(), cfg.len() - 1);
        for walk in &walks {
            assert!(!walk.contains(&0));
            for pair in walk.windows(2) {
                assert_eq!(cfg.edges()[pair[0]].to, cfg.edges()[pair[1]].from);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn zero_depth_walks_panic() {
        let _ = fig2().cfg().random_walks(0, 1);
    }
}
