//! Lowering an FSM to an unprotected, binary-encoded gate-level netlist.
//!
//! This produces the circuit of the paper's Figure 1: a state register, a
//! next-state function `φ` built from comparators and muxes, and Moore
//! output logic `λ`. It is the **reference (i) "unprotected"** configuration
//! of the evaluation (§6.1) and the unit that the redundancy baseline
//! replicates `N` times.

use scfi_gf2::BitVec;
use scfi_netlist::{Module, ModuleBuilder, NetId, ValidateError};

use crate::model::{Fsm, StateId};

/// The result of lowering an [`Fsm`]: the netlist plus the binary state
/// encoding needed to interpret it.
///
/// Ports: one input per control signal (FSM order); outputs `state[i]`
/// (binary state code, LSB first) and one output per Moore output.
///
/// # Example
///
/// ```
/// use scfi_fsm::{lower_unprotected, parse_fsm};
/// use scfi_netlist::Simulator;
///
/// let fsm = parse_fsm(
///     "fsm t { inputs go; state A { if go -> B; } state B { goto A; } }",
/// )?;
/// let lowered = lower_unprotected(&fsm)?;
/// let mut sim = Simulator::new(lowered.module());
/// sim.step(&[true]); // A --go--> B
/// assert_eq!(lowered.decode_registers(sim.register_values()), Some(fsm.state_by_name("B").unwrap()));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct LoweredFsm {
    module: Module,
    state_bits: usize,
    encodings: Vec<BitVec>,
}

impl LoweredFsm {
    /// The gate-level netlist.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Consumes the lowering, returning the netlist.
    pub fn into_module(self) -> Module {
        self.module
    }

    /// Width of the binary state register.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// The binary code of each state, indexed by [`StateId`].
    pub fn encodings(&self) -> &[BitVec] {
        &self.encodings
    }

    /// The binary code of one state.
    pub fn encoding(&self, s: StateId) -> &BitVec {
        &self.encodings[s.0]
    }

    /// Decodes raw register values (in `module.registers()` order) back to
    /// a state id, or `None` for a code outside the state space.
    pub fn decode_registers(&self, regs: &[bool]) -> Option<StateId> {
        let word = BitVec::from_bools(regs);
        self.encodings.iter().position(|e| *e == word).map(StateId)
    }
}

/// Lowers `fsm` to a flat netlist with the natural binary state encoding
/// (state `i` encodes as `i`).
///
/// The generated structure mirrors what a synthesis tool emits for the
/// `unique case` idiom of Fig. 4:
///
/// * per-state one-hot match comparators on the state register,
/// * per-state priority mux chains implementing the `if/else-if` guards,
/// * a one-hot AND–OR next-state select,
/// * OR-trees for the Moore outputs.
///
/// # Errors
///
/// Propagates netlist validation errors (none are expected for a valid
/// [`Fsm`]).
pub fn lower_unprotected(fsm: &Fsm) -> Result<LoweredFsm, ValidateError> {
    let n_states = fsm.state_count();
    let state_bits = usize::max(1, (usize::BITS - (n_states - 1).leading_zeros()) as usize);
    let encodings: Vec<BitVec> = (0..n_states)
        .map(|i| BitVec::from_u64(i as u64, state_bits))
        .collect();

    let mut b = ModuleBuilder::new(format!("{}_unprotected", fsm.name()));
    let inputs: Vec<NetId> = fsm
        .signals()
        .iter()
        .map(|name| b.input(name.clone()))
        .collect();
    let reset_code = encodings[fsm.reset_state().0].clone();
    let state_q = b.dff_word_uninit(state_bits, &reset_code);

    // One-hot state match comparators.
    let matches: Vec<NetId> = encodings
        .iter()
        .map(|code| b.eq_const(&state_q, code))
        .collect();

    // Per-state next-state candidate via a reverse-priority mux chain.
    let mut candidates: Vec<Vec<NetId>> = Vec::with_capacity(n_states);
    for s in fsm.states() {
        let mut cand = b.const_word(&encodings[s.0]); // default: stay
        for t in fsm.transitions(s).iter().rev() {
            let lits: Vec<NetId> = t
                .guard
                .literals()
                .iter()
                .map(|&(sig, v)| {
                    if v {
                        inputs[sig.0]
                    } else {
                        b.not(inputs[sig.0])
                    }
                })
                .collect();
            let cond = b.and_all(&lits);
            let target_word = b.const_word(&encodings[t.target.0]);
            cand = b.mux_word(cond, &cand, &target_word);
        }
        candidates.push(cand);
    }

    // One-hot select of the active candidate.
    let next_state = b.onehot_select(&matches, &candidates);
    b.set_dff_word(&state_q, &next_state);
    b.output_word("state", &state_q);

    // Moore output logic λ: OR of the asserting states' match signals.
    for (oi, name) in fsm.outputs().iter().enumerate() {
        let terms: Vec<NetId> = fsm
            .states()
            .iter()
            .filter(|&&s| fsm.asserted_outputs(s).iter().any(|o| o.0 == oi))
            .map(|&s| matches[s.0])
            .collect();
        let y = b.or_all(&terms);
        b.output(name.clone(), y);
    }

    Ok(LoweredFsm {
        module: b.finish()?,
        state_bits,
        encodings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FsmBuilder;
    use crate::parse::parse_fsm;
    use crate::sim::FsmSimulator;
    use scfi_netlist::Simulator;

    fn lock() -> Fsm {
        parse_fsm(
            "fsm lock {
               inputs key_ok, tamper;
               outputs open, alarm;
               reset LOCKED;
               state LOCKED { if key_ok && !tamper -> OPEN; if tamper -> ALARM; }
               state OPEN   { out open; if tamper -> ALARM; if !key_ok -> LOCKED; }
               state ALARM  { out alarm; goto ALARM; }
             }",
        )
        .unwrap()
    }

    /// Deterministic pseudo-random input sequence.
    fn trace(n_signals: usize, len: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut state = seed.max(1);
        (0..len)
            .map(|_| {
                (0..n_signals)
                    .map(|_| {
                        state ^= state >> 12;
                        state ^= state << 25;
                        state ^= state >> 27;
                        state.wrapping_mul(0x2545F4914F6CDD1D) & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn lockstep_equivalence_with_behavioral_model() {
        let fsm = lock();
        let lowered = lower_unprotected(&fsm).unwrap();
        let mut gate = Simulator::new(lowered.module());
        let mut gold = FsmSimulator::new(&fsm);
        for inputs in trace(2, 300, 0xA5A5) {
            gate.step(&inputs);
            let expect = gold.step(&inputs);
            assert_eq!(
                lowered.decode_registers(gate.register_values()),
                Some(expect),
                "divergence at cycle {}",
                gold.cycle()
            );
        }
    }

    #[test]
    fn moore_outputs_match_behavioral_model() {
        let fsm = lock();
        let lowered = lower_unprotected(&fsm).unwrap();
        let mut gate = Simulator::new(lowered.module());
        let mut gold = FsmSimulator::new(&fsm);
        // Outputs are sampled *before* the edge, i.e. they reflect the
        // pre-step state; compare against the golden model pre-step.
        for inputs in trace(2, 120, 0x1234) {
            let pre_outputs = gold.outputs();
            let gate_out = gate.step(&inputs);
            gold.step(&inputs);
            // Gate outputs: state bits first, then Moore outputs.
            let moore = &gate_out[lowered.state_bits()..];
            assert_eq!(moore, &pre_outputs[..]);
        }
    }

    #[test]
    fn reset_state_is_encoded_in_registers() {
        let fsm = lock();
        let lowered = lower_unprotected(&fsm).unwrap();
        let gate = Simulator::new(lowered.module());
        assert_eq!(
            lowered.decode_registers(gate.register_values()),
            Some(fsm.reset_state())
        );
    }

    #[test]
    fn state_bits_is_log2() {
        let fsm = lock(); // 3 states → 2 bits
        let lowered = lower_unprotected(&fsm).unwrap();
        assert_eq!(lowered.state_bits(), 2);
        assert_eq!(lowered.encodings().len(), 3);
        assert_eq!(lowered.encoding(StateId(2)).to_u64(), 2);
    }

    #[test]
    fn single_state_machine_lowers() {
        let mut b = FsmBuilder::new("one");
        b.state("ONLY").unwrap();
        let fsm = b.finish().unwrap();
        let lowered = lower_unprotected(&fsm).unwrap();
        assert_eq!(lowered.state_bits(), 1);
        let mut sim = Simulator::new(lowered.module());
        sim.step(&[]);
        assert_eq!(
            lowered.decode_registers(sim.register_values()),
            Some(StateId(0))
        );
    }

    #[test]
    fn decode_rejects_out_of_space_codes() {
        let fsm = lock(); // 3 states in 2 bits → code 3 unused
        let lowered = lower_unprotected(&fsm).unwrap();
        assert_eq!(lowered.decode_registers(&[true, true]), None);
    }

    #[test]
    fn priority_is_respected_in_gates() {
        let fsm = parse_fsm(
            "fsm p { inputs a, b;
               state S { if a -> T1; if b -> T2; }
               state T1 { goto S; }
               state T2 { goto S; } }",
        )
        .unwrap();
        let lowered = lower_unprotected(&fsm).unwrap();
        let mut sim = Simulator::new(lowered.module());
        sim.step(&[true, true]); // both guards — priority picks T1
        assert_eq!(
            lowered.decode_registers(sim.register_values()),
            fsm.state_by_name("T1")
        );
    }

    #[test]
    fn module_has_expected_ports() {
        let fsm = lock();
        let lowered = lower_unprotected(&fsm).unwrap();
        let m = lowered.module();
        assert_eq!(m.inputs().len(), 2);
        // 2 state bits + 2 Moore outputs.
        assert_eq!(m.outputs().len(), 4);
        assert!(m.output_net("open").is_some());
        assert!(m.output_net("state[1]").is_some());
    }
}
