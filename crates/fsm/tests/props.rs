//! Property-based tests: random FSMs lower to netlists that track the
//! behavioral model, and CFG extraction is consistent with stepping.

use proptest::prelude::*;
use scfi_fsm::{lower_unprotected, Fsm, FsmBuilder, FsmSimulator, Guard, SignalId};
use scfi_netlist::Simulator;

/// One random transition: `(target pick, guard literal picks)`.
type TransitionSpec = (usize, Vec<(usize, bool)>);

#[derive(Clone, Debug)]
struct Spec {
    n_states: usize,
    n_signals: usize,
    transitions: Vec<Vec<TransitionSpec>>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..8, 1usize..4).prop_flat_map(|(n_states, n_signals)| {
        let transition =
            (0usize..16, proptest::collection::vec((0usize..8, any::<bool>()), 0..3));
        let per_state = proptest::collection::vec(transition, 0..4);
        proptest::collection::vec(per_state, n_states..=n_states).prop_map(move |transitions| {
            Spec {
                n_states,
                n_signals,
                transitions,
            }
        })
    })
}

fn build(spec: &Spec) -> Fsm {
    let mut b = FsmBuilder::new("random");
    let signals: Vec<SignalId> = (0..spec.n_signals)
        .map(|i| b.signal(format!("x{i}")).expect("fresh"))
        .collect();
    let states: Vec<_> = (0..spec.n_states)
        .map(|i| b.state(format!("S{i}")).expect("fresh"))
        .collect();
    for (si, ts) in spec.transitions.iter().enumerate() {
        for (target, lits) in ts {
            let mut seen = std::collections::HashSet::new();
            let lits: Vec<(SignalId, bool)> = lits
                .iter()
                .filter(|(s, _)| seen.insert(s % spec.n_signals))
                .map(|&(s, v)| (signals[s % spec.n_signals], v))
                .collect();
            b.transition(
                states[si],
                states[target % spec.n_states],
                Guard::new(lits).expect("deduplicated"),
            );
        }
    }
    b.finish().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The gate-level lowering of any random FSM tracks the behavioral
    /// simulator over a random walk.
    #[test]
    fn lowering_tracks_behavior(s in spec(), seed in any::<u64>()) {
        let fsm = build(&s);
        let lowered = lower_unprotected(&fsm).expect("lowerable");
        let mut gate = Simulator::new(lowered.module());
        let mut gold = FsmSimulator::new(&fsm);
        let mut rng = seed.max(1);
        for cycle in 0..60 {
            rng ^= rng >> 12; rng ^= rng << 25; rng ^= rng >> 27;
            let bits = rng.wrapping_mul(0x2545F4914F6CDD1D);
            let inputs: Vec<bool> = (0..s.n_signals).map(|i| (bits >> i) & 1 == 1).collect();
            gate.step(&inputs);
            let expect = gold.step(&inputs);
            prop_assert_eq!(
                lowered.decode_registers(gate.register_values()),
                Some(expect),
                "cycle {}", cycle
            );
        }
    }

    /// CFG matched_edge always agrees with next_state, for every state and
    /// every input valuation.
    #[test]
    fn cfg_matches_semantics(s in spec()) {
        let fsm = build(&s);
        let cfg = fsm.cfg();
        for state in fsm.states() {
            for bits in 0..(1u32 << s.n_signals) {
                let inputs: Vec<bool> =
                    (0..s.n_signals).map(|i| (bits >> i) & 1 == 1).collect();
                let edge = &cfg.edges()[cfg.matched_edge(state, &inputs)];
                prop_assert_eq!(edge.from, state);
                prop_assert_eq!(edge.to, fsm.next_state(state, &inputs));
            }
        }
    }

    /// Every state has at least one outgoing CFG edge and local indices
    /// are dense.
    #[test]
    fn cfg_structure_is_well_formed(s in spec()) {
        let fsm = build(&s);
        let cfg = fsm.cfg();
        for state in fsm.states() {
            let locals: Vec<usize> = cfg
                .out_edges(state)
                .iter()
                .map(|e| e.local_index(&fsm))
                .collect();
            prop_assert!(!locals.is_empty());
            let mut sorted = locals.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), locals.len(), "duplicate local indices");
            prop_assert!(*sorted.last().expect("nonempty") < cfg.max_out_degree());
        }
    }
}
