//! Property-based tests: random FSMs lower to netlists that track the
//! behavioral model, and CFG extraction is consistent with stepping.

use proptest::prelude::*;
use scfi_fsm::{
    lower_unprotected, parse_fsm, write_fsm, Fsm, FsmBuilder, FsmSimulator, Guard, SignalId,
};
use scfi_netlist::Simulator;

/// One random transition: `(target pick, guard literal picks)`.
type TransitionSpec = (usize, Vec<(usize, bool)>);

#[derive(Clone, Debug)]
struct Spec {
    n_states: usize,
    n_signals: usize,
    transitions: Vec<Vec<TransitionSpec>>,
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..8, 1usize..4).prop_flat_map(|(n_states, n_signals)| {
        let transition = (
            0usize..16,
            proptest::collection::vec((0usize..8, any::<bool>()), 0..3),
        );
        let per_state = proptest::collection::vec(transition, 0..4);
        proptest::collection::vec(per_state, n_states..=n_states).prop_map(move |transitions| {
            Spec {
                n_states,
                n_signals,
                transitions,
            }
        })
    })
}

fn build(spec: &Spec) -> Fsm {
    build_with(spec, &[], None)
}

/// Builds the random FSM, optionally decorated with Moore outputs (one per
/// entry of `out_masks`; bit `i % 8` of a mask asserts the output in state
/// `i`) and an explicit reset state — so the DSL writer has to emit every
/// construct of the grammar.
fn build_with(spec: &Spec, out_masks: &[u8], reset_pick: Option<usize>) -> Fsm {
    let mut b = FsmBuilder::new("random");
    let signals: Vec<SignalId> = (0..spec.n_signals)
        .map(|i| b.signal(format!("x{i}")).expect("fresh"))
        .collect();
    let states: Vec<_> = (0..spec.n_states)
        .map(|i| b.state(format!("S{i}")).expect("fresh"))
        .collect();
    let outputs: Vec<_> = (0..out_masks.len())
        .map(|i| b.output(format!("y{i}")).expect("fresh"))
        .collect();
    for (oi, &mask) in out_masks.iter().enumerate() {
        for (si, &state) in states.iter().enumerate() {
            if (mask >> (si % 8)) & 1 == 1 {
                b.assert_output(state, outputs[oi]);
            }
        }
    }
    if let Some(pick) = reset_pick {
        b.reset(states[pick % spec.n_states]);
    }
    for (si, ts) in spec.transitions.iter().enumerate() {
        for (target, lits) in ts {
            let mut seen = std::collections::HashSet::new();
            let lits: Vec<(SignalId, bool)> = lits
                .iter()
                .filter(|(s, _)| seen.insert(s % spec.n_signals))
                .map(|&(s, v)| (signals[s % spec.n_signals], v))
                .collect();
            b.transition(
                states[si],
                states[target % spec.n_states],
                Guard::new(lits).expect("deduplicated"),
            );
        }
    }
    b.finish().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The gate-level lowering of any random FSM tracks the behavioral
    /// simulator over a random walk.
    #[test]
    fn lowering_tracks_behavior(s in spec(), seed in any::<u64>()) {
        let fsm = build(&s);
        let lowered = lower_unprotected(&fsm).expect("lowerable");
        let mut gate = Simulator::new(lowered.module());
        let mut gold = FsmSimulator::new(&fsm);
        let mut rng = seed.max(1);
        for cycle in 0..60 {
            rng ^= rng >> 12; rng ^= rng << 25; rng ^= rng >> 27;
            let bits = rng.wrapping_mul(0x2545F4914F6CDD1D);
            let inputs: Vec<bool> = (0..s.n_signals).map(|i| (bits >> i) & 1 == 1).collect();
            gate.step(&inputs);
            let expect = gold.step(&inputs);
            prop_assert_eq!(
                lowered.decode_registers(gate.register_values()),
                Some(expect),
                "cycle {}", cycle
            );
        }
    }

    /// CFG matched_edge always agrees with next_state, for every state and
    /// every input valuation.
    #[test]
    fn cfg_matches_semantics(s in spec()) {
        let fsm = build(&s);
        let cfg = fsm.cfg();
        for state in fsm.states() {
            for bits in 0..(1u32 << s.n_signals) {
                let inputs: Vec<bool> =
                    (0..s.n_signals).map(|i| (bits >> i) & 1 == 1).collect();
                let edge = &cfg.edges()[cfg.matched_edge(state, &inputs)];
                prop_assert_eq!(edge.from, state);
                prop_assert_eq!(edge.to, fsm.next_state(state, &inputs));
            }
        }
    }

    /// Every state has at least one outgoing CFG edge and local indices
    /// are dense.
    #[test]
    fn cfg_structure_is_well_formed(s in spec()) {
        let fsm = build(&s);
        let cfg = fsm.cfg();
        for state in fsm.states() {
            let locals: Vec<usize> = cfg
                .out_edges(state)
                .iter()
                .map(|e| e.local_index(&fsm))
                .collect();
            prop_assert!(!locals.is_empty());
            let mut sorted = locals.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), locals.len(), "duplicate local indices");
            prop_assert!(*sorted.last().expect("nonempty") < cfg.max_out_degree());
        }
    }

    /// `parse_fsm(write_fsm(f))` reconstructs an identical machine: same
    /// naming, structure, reset, Moore outputs, and — exhaustively over the
    /// input space — the same next-state function.
    #[test]
    fn dsl_round_trip_preserves_machine(
        s in spec(),
        out_masks in proptest::collection::vec(any::<u8>(), 0..3),
        reset in any::<u32>(),
    ) {
        let fsm = build_with(&s, &out_masks, Some(reset as usize));
        let round = parse_fsm(&write_fsm(&fsm));
        prop_assert!(round.is_ok(), "writer output must parse: {:?}", round.err());
        let round = round.unwrap();
        prop_assert_eq!(round.name(), fsm.name());
        prop_assert_eq!(round.signals(), fsm.signals());
        prop_assert_eq!(round.outputs(), fsm.outputs());
        prop_assert_eq!(round.state_count(), fsm.state_count());
        prop_assert_eq!(round.transition_count(), fsm.transition_count());
        prop_assert_eq!(round.reset_state(), fsm.reset_state());
        for state in fsm.states() {
            prop_assert_eq!(round.state_name(state), fsm.state_name(state));
            prop_assert_eq!(round.asserted_outputs(state), fsm.asserted_outputs(state));
            for bits in 0..(1u32 << s.n_signals) {
                let inputs: Vec<bool> =
                    (0..s.n_signals).map(|i| (bits >> i) & 1 == 1).collect();
                prop_assert_eq!(
                    round.next_state(state, &inputs),
                    fsm.next_state(state, &inputs),
                    "state {:?} inputs {:?}", state, inputs
                );
            }
        }
    }

    /// The writer is a normal form: writing the round-tripped machine
    /// reproduces the text byte for byte.
    #[test]
    fn dsl_writer_is_idempotent(
        s in spec(),
        out_masks in proptest::collection::vec(any::<u8>(), 0..3),
    ) {
        let fsm = build_with(&s, &out_masks, None);
        let text = write_fsm(&fsm);
        let round = parse_fsm(&text);
        prop_assert!(round.is_ok(), "writer output must parse: {:?}", round.err());
        prop_assert_eq!(write_fsm(&round.unwrap()), text);
    }
}
