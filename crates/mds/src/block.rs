//! Block matrices of GF(2) linear maps and the exact MDS check.

use std::fmt;

use scfi_gf2::{for_each_combination, BitMatrix, BitVec};

/// A `k × k` matrix whose entries are `l × l` binary matrices — GF(2)-linear
/// maps acting on `l`-bit symbols.
///
/// SCFI instantiates `k = 4`, `l = 8` (four byte lanes, Fig. 6). The matrix
/// is *MDS* iff every square block submatrix is nonsingular, which is
/// equivalent to the branch number being `k + 1` — the property the paper's
/// diffusion-layer security argument rests on.
///
/// # Example
///
/// ```
/// use scfi_gf2::BitMatrix;
/// use scfi_mds::BlockMatrix;
///
/// // The 2x2 identity-block matrix is NOT MDS: the off-diagonal blocks are 0.
/// let id = BitMatrix::identity(4);
/// let zero = BitMatrix::zero(4, 4);
/// let m = BlockMatrix::from_blocks(2, 4, vec![
///     id.clone(), zero.clone(),
///     zero, id,
/// ]);
/// assert!(!m.is_mds());
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BlockMatrix {
    k: usize,
    l: usize,
    /// Row-major `k*k` blocks.
    blocks: Vec<BitMatrix>,
}

impl BlockMatrix {
    /// Creates a block matrix from `k*k` blocks in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the number of blocks is not `k²` or any block is not
    /// `l × l`.
    pub fn from_blocks(k: usize, l: usize, blocks: Vec<BitMatrix>) -> Self {
        assert_eq!(blocks.len(), k * k, "expected k*k blocks");
        assert!(
            blocks.iter().all(|b| b.rows() == l && b.cols() == l),
            "every block must be {l}x{l}"
        );
        BlockMatrix { k, l, blocks }
    }

    /// Number of block rows/columns.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Symbol width in bits.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Borrows block `(r, c)`.
    pub fn block(&self, r: usize, c: usize) -> &BitMatrix {
        &self.blocks[r * self.k + c]
    }

    /// Expands to the flat `(k·l) × (k·l)` binary matrix.
    pub fn expand(&self) -> BitMatrix {
        let n = self.k * self.l;
        let mut m = BitMatrix::zero(n, n);
        for r in 0..self.k {
            for c in 0..self.k {
                m.write_block(r * self.l, c * self.l, self.block(r, c));
            }
        }
        m
    }

    /// Exact MDS check: every `r × r` block submatrix (for every
    /// `1 ≤ r ≤ k`) must be invertible as an `(r·l) × (r·l)` binary matrix.
    ///
    /// This is the standard generalization of the minor criterion to
    /// matrices over linear maps and is the ground truth used to validate
    /// candidate constructions (the paper's ring `F₂[α]/(X⁸+X²+1)` has zero
    /// divisors, so field-style determinant arguments do not apply).
    pub fn is_mds(&self) -> bool {
        let expanded = self.expand();
        let mut ok = true;
        for r in 1..=self.k {
            if !ok {
                break;
            }
            for_each_combination(self.k, r, |rows| {
                if !ok {
                    return;
                }
                // Pre-expand row bit indices for this row subset.
                let row_bits: Vec<usize> = rows
                    .iter()
                    .flat_map(|&br| br * self.l..(br + 1) * self.l)
                    .collect();
                for_each_combination(self.k, r, |cols| {
                    if !ok {
                        return;
                    }
                    let col_bits: Vec<usize> = cols
                        .iter()
                        .flat_map(|&bc| bc * self.l..(bc + 1) * self.l)
                        .collect();
                    let sub = expanded.select(&row_bits, &col_bits);
                    if !sub.is_invertible() {
                        ok = false;
                    }
                });
            });
        }
        ok
    }

    /// Byte-lane weight of a `k·l`-bit vector: the number of `l`-bit symbols
    /// that are nonzero.
    pub fn symbol_weight(&self, v: &BitVec) -> usize {
        assert_eq!(v.len(), self.k * self.l, "vector width mismatch");
        (0..self.k)
            .filter(|&i| !v.slice(i * self.l..(i + 1) * self.l).is_zero())
            .count()
    }

    /// The minimum of `symbol_weight(x) + symbol_weight(M·x)` observed over
    /// all inputs with exactly one nonzero symbol — exhaustively.
    ///
    /// For an MDS matrix this equals `k + 1` (branch number 5 for `k = 4`,
    /// matching §6.3: "they have a branch number of 5").
    pub fn branch_number_single_symbol(&self) -> usize {
        let m = self.expand();
        let mut best = usize::MAX;
        for sym in 0..self.k {
            for val in 1..(1u64 << self.l) {
                let mut x = BitVec::zeros(self.k * self.l);
                for b in 0..self.l {
                    if (val >> b) & 1 == 1 {
                        x.set(sym * self.l + b, true);
                    }
                }
                let w = 1 + self.symbol_weight(&m.mul_vec(&x));
                best = best.min(w);
                if best <= 2 {
                    return best;
                }
            }
        }
        best
    }

    /// Samples `iters` random nonzero inputs and returns the minimum
    /// observed `symbol_weight(x) + symbol_weight(M·x)`.
    ///
    /// This is an *upper bound* on the branch number; it is useful as a
    /// cheap sanity check that sampled inputs never violate the MDS bound.
    /// # Panics
    ///
    /// Panics if `k·l > 64` (the sampler draws 64-bit words).
    pub fn branch_number_sampled(&self, seed: u64, iters: usize) -> usize {
        let n = self.k * self.l;
        assert!(n <= 64, "sampler supports at most 64-bit inputs");
        let m = self.expand();
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let mut state = seed.max(1);
        let mut best = usize::MAX;
        for _ in 0..iters {
            // xorshift64* PRNG — deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let bits = state.wrapping_mul(0x2545F4914F6CDD1D) & mask;
            if bits == 0 {
                continue;
            }
            let x = BitVec::from_u64(bits, n);
            let w = self.symbol_weight(&x) + self.symbol_weight(&m.mul_vec(&x));
            best = best.min(w);
        }
        best
    }
}

impl fmt::Debug for BlockMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockMatrix[{0}x{0} of {1}x{1}]", self.k, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_gf2::Gf2Poly;

    /// AES MixColumns as a block matrix: circ(α, α+1, 1, 1) over
    /// GF(2^8)/0x11B — a known-MDS reference.
    fn aes_mixcolumns() -> BlockMatrix {
        let alpha = Gf2Poly::from_coeffs(0x11B).companion_matrix();
        let one = BitMatrix::identity(8);
        let a1 = alpha.add(&one); // α + 1  (AES "3")
        let row: [&BitMatrix; 4] = [&alpha, &a1, &one, &one];
        let mut blocks = Vec::new();
        for r in 0..4 {
            for c in 0..4 {
                blocks.push(row[(c + 4 - r) % 4].clone());
            }
        }
        BlockMatrix::from_blocks(4, 8, blocks)
    }

    #[test]
    fn aes_matrix_is_mds() {
        assert!(aes_mixcolumns().is_mds());
    }

    #[test]
    fn identity_blocks_not_mds() {
        let id = BitMatrix::identity(8);
        let blocks = (0..16)
            .map(|i| {
                if i % 5 == 0 {
                    id.clone()
                } else {
                    BitMatrix::zero(8, 8)
                }
            })
            .collect();
        let m = BlockMatrix::from_blocks(4, 8, blocks);
        assert!(!m.is_mds());
    }

    #[test]
    fn all_ones_blocks_not_mds() {
        // circ(1,1,1,1) has singular 2x2 minors.
        let id = BitMatrix::identity(8);
        let m = BlockMatrix::from_blocks(4, 8, vec![id; 16]);
        assert!(!m.is_mds());
    }

    #[test]
    fn expand_layout() {
        let m = aes_mixcolumns();
        let e = m.expand();
        assert_eq!(e.rows(), 32);
        // Block (0,2) is identity → bit (0, 16) set.
        assert!(e.get(0, 16));
    }

    #[test]
    fn aes_branch_number_is_five() {
        assert_eq!(aes_mixcolumns().branch_number_single_symbol(), 5);
    }

    #[test]
    fn sampled_branch_number_never_below_five_for_mds() {
        let m = aes_mixcolumns();
        assert!(m.branch_number_sampled(42, 2000) >= 5);
    }

    #[test]
    fn symbol_weight_counts_nonzero_lanes() {
        let m = aes_mixcolumns();
        let mut v = BitVec::zeros(32);
        assert_eq!(m.symbol_weight(&v), 0);
        v.set(0, true);
        v.set(9, true);
        v.set(10, true);
        assert_eq!(m.symbol_weight(&v), 2);
    }

    #[test]
    fn aes_expanded_is_invertible() {
        assert!(aes_mixcolumns().expand().is_invertible());
    }
}
