//! Maximum distance separable (MDS) matrices over 8-bit GF(2) linear maps.
//!
//! SCFI's fault-hardened next-state function `φ_FH` diffuses its input triple
//! `{S_Ce, X_e, Mod}` through a 32-bit MDS matrix multiplication (paper §4.1,
//! §5.1, Fig. 6): a 4×4 matrix whose entries are 8×8 binary matrices
//! (GF(2)-linear maps on bytes). The MDS property — every square block minor
//! is nonsingular, equivalently branch number 5 — guarantees that any
//! corrupted input byte avalanches into *all four* output bytes, which is the
//! core of the paper's security argument (§6.3).
//!
//! This crate provides:
//!
//! * [`BlockMatrix`] — a `k × k` matrix of `l × l` binary blocks with an
//!   exact MDS check via block-minor enumeration,
//! * [`XorProgram`] — lowering of a binary matrix to a straight-line XOR
//!   program, either naively (balanced trees per output) or with Paar-style
//!   greedy common-subexpression elimination,
//! * [`MdsMatrix`] / [`MdsSpec`] — concrete verified constructions: a
//!   lightweight matrix searched over the paper's ring `F₂[α]`,
//!   `α: X⁸ + X² + 1` (substituting for Duval–Leurent's `M^{8,3}_{4,6}`,
//!   whose exact entries the SCFI paper does not reproduce), and the AES
//!   MixColumns matrix over `GF(2⁸)/0x11B` as a provably-MDS reference.
//!
//! # Example
//!
//! ```
//! use scfi_mds::MdsSpec;
//!
//! let mds = MdsSpec::ScfiLightweight.build();
//! assert!(mds.block().is_mds());
//! assert_eq!(mds.matrix().rows(), 32);
//!
//! // A single flipped input bit disturbs all four output bytes.
//! let mut x = scfi_gf2::BitVec::zeros(32);
//! x.set(3, true);
//! let y = mds.mul(&x);
//! for byte in 0..4 {
//!     assert!((0..8).any(|b| y.get(byte * 8 + b)));
//! }
//! ```

mod block;
mod construct;
mod xor_program;

pub use block::BlockMatrix;
pub use construct::{MdsMatrix, MdsSpec};
pub use xor_program::{Lowering, OutputSource, SignalId, XorProgram};
