//! Lowering binary matrices to straight-line XOR programs.

use std::collections::HashMap;
use std::fmt;

use scfi_gf2::{BitMatrix, BitVec};

/// How to lower a matrix–vector product to XOR gates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Lowering {
    /// One balanced XOR tree per output row; no sharing between rows.
    #[default]
    Naive,
    /// Paar's greedy common-subexpression elimination: repeatedly factor the
    /// most frequent input pair into a shared intermediate signal. Lower XOR
    /// count, possibly deeper than the naive balanced trees.
    Paar,
}

/// One signal reference inside an [`XorProgram`].
///
/// Signals `0..n_inputs` are the program inputs; signal `n_inputs + i` is
/// the result of operation `i`.
pub type SignalId = usize;

/// Where an output bit comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OutputSource {
    /// The output is constantly zero (empty matrix row).
    Zero,
    /// The output equals the given signal.
    Signal(SignalId),
}

/// A straight-line program of 2-input XOR operations computing `y = M·x`
/// over GF(2).
///
/// This is the form in which the SCFI pass emits the diffusion layer into
/// the gate-level netlist: the paper notes the lightweight diffusion
/// functions "consist of only XOR gates" (§5.1, step 4).
///
/// # Example
///
/// ```
/// use scfi_gf2::{BitMatrix, BitVec};
/// use scfi_mds::{Lowering, XorProgram};
///
/// let m = BitMatrix::from_fn(3, 3, |r, c| r != c); // complement-identity
/// let p = XorProgram::lower(&m, Lowering::Paar);
/// let x = BitVec::from_u64(0b011, 3);
/// assert_eq!(p.eval(&x), m.mul_vec(&x));
/// ```
#[derive(Clone, Debug)]
pub struct XorProgram {
    n_inputs: usize,
    ops: Vec<(SignalId, SignalId)>,
    outputs: Vec<OutputSource>,
}

impl XorProgram {
    /// Lowers matrix `m` to an XOR program with the chosen strategy.
    pub fn lower(m: &BitMatrix, strategy: Lowering) -> XorProgram {
        match strategy {
            Lowering::Naive => Self::lower_naive(m),
            Lowering::Paar => Self::lower_paar(m),
        }
    }

    fn lower_naive(m: &BitMatrix) -> XorProgram {
        let n_inputs = m.cols();
        let mut prog = XorProgram {
            n_inputs,
            ops: Vec::new(),
            outputs: Vec::with_capacity(m.rows()),
        };
        for r in 0..m.rows() {
            let terms: Vec<SignalId> = m.row(r).support();
            let sig = prog.balanced_xor(&terms);
            prog.outputs.push(sig);
        }
        prog
    }

    fn lower_paar(m: &BitMatrix) -> XorProgram {
        let n_inputs = m.cols();
        let mut prog = XorProgram {
            n_inputs,
            ops: Vec::new(),
            outputs: Vec::new(),
        };
        // Rows as signal-id sets; extraction rewrites them in place.
        let mut rows: Vec<Vec<SignalId>> = (0..m.rows()).map(|r| m.row(r).support()).collect();
        loop {
            // Count co-occurrences of signal pairs across rows.
            let mut pair_count: HashMap<(SignalId, SignalId), usize> = HashMap::new();
            for row in &rows {
                for i in 0..row.len() {
                    for j in i + 1..row.len() {
                        *pair_count.entry((row[i], row[j])).or_insert(0) += 1;
                    }
                }
            }
            // Most frequent pair; deterministic tie-break on the pair ids.
            let best = pair_count
                .iter()
                .filter(|&(_, &c)| c >= 2)
                .max_by_key(|&(&pair, &c)| (c, std::cmp::Reverse(pair)));
            let Some((&(a, b), _)) = best else { break };
            let new_sig = prog.push_op(a, b);
            for row in &mut rows {
                if row.contains(&a) && row.contains(&b) {
                    row.retain(|&s| s != a && s != b);
                    row.push(new_sig);
                }
            }
        }
        for row in rows {
            let sig = prog.balanced_xor(&row);
            prog.outputs.push(sig);
        }
        prog
    }

    /// XORs a list of signals together as a balanced tree, returning the
    /// root signal (or `Zero` for an empty list).
    fn balanced_xor(&mut self, terms: &[SignalId]) -> OutputSource {
        match terms.len() {
            0 => OutputSource::Zero,
            1 => OutputSource::Signal(terms[0]),
            _ => {
                let mut level: Vec<SignalId> = terms.to_vec();
                while level.len() > 1 {
                    let mut next = Vec::with_capacity(level.len().div_ceil(2));
                    for chunk in level.chunks(2) {
                        if chunk.len() == 2 {
                            next.push(self.push_op(chunk[0], chunk[1]));
                        } else {
                            next.push(chunk[0]);
                        }
                    }
                    level = next;
                }
                OutputSource::Signal(level[0])
            }
        }
    }

    fn push_op(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let id = self.n_inputs + self.ops.len();
        self.ops.push((a, b));
        id
    }

    /// Number of program inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of program outputs.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The XOR operations in execution order. Operand ids below
    /// [`XorProgram::n_inputs`] reference inputs; higher ids reference
    /// earlier operation results.
    pub fn ops(&self) -> &[(SignalId, SignalId)] {
        &self.ops
    }

    /// Per-output sources.
    pub fn outputs(&self) -> &[OutputSource] {
        &self.outputs
    }

    /// Total number of 2-input XOR gates.
    pub fn xor_count(&self) -> usize {
        self.ops.len()
    }

    /// Longest chain of XOR operations from any input to any output.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.n_inputs + self.ops.len()];
        for (i, &(a, b)) in self.ops.iter().enumerate() {
            depth[self.n_inputs + i] = 1 + depth[a].max(depth[b]);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                OutputSource::Zero => 0,
                OutputSource::Signal(s) => depth[*s],
            })
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the program on an input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_inputs()`.
    pub fn eval(&self, x: &BitVec) -> BitVec {
        assert_eq!(x.len(), self.n_inputs, "input width mismatch");
        let mut vals: Vec<bool> = x.iter().collect();
        vals.reserve(self.ops.len());
        for &(a, b) in &self.ops {
            let v = vals[a] ^ vals[b];
            vals.push(v);
        }
        self.outputs
            .iter()
            .map(|o| match o {
                OutputSource::Zero => false,
                OutputSource::Signal(s) => vals[*s],
            })
            .collect()
    }
}

impl fmt::Display for XorProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XorProgram({} inputs, {} XORs, depth {}, {} outputs)",
            self.n_inputs,
            self.xor_count(),
            self.depth(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(rows: usize, cols: usize, seed: u64) -> BitMatrix {
        let mut state = seed.max(1);
        BitMatrix::from_fn(rows, cols, |_, _| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545F4914F6CDD1D) & 1 == 1
        })
    }

    fn exhaustive_equiv(m: &BitMatrix, p: &XorProgram) {
        assert!(m.cols() <= 16, "test helper limit");
        for v in 0..(1u64 << m.cols()) {
            let x = BitVec::from_u64(v, m.cols());
            assert_eq!(p.eval(&x), m.mul_vec(&x), "input {v:#x}");
        }
    }

    #[test]
    fn naive_matches_matrix_exhaustively() {
        let m = dense(6, 6, 7);
        exhaustive_equiv(&m, &XorProgram::lower(&m, Lowering::Naive));
    }

    #[test]
    fn paar_matches_matrix_exhaustively() {
        let m = dense(6, 6, 7);
        exhaustive_equiv(&m, &XorProgram::lower(&m, Lowering::Paar));
    }

    #[test]
    fn paar_never_worse_than_naive_on_dense_matrices() {
        for seed in 1..6 {
            let m = dense(8, 8, seed);
            let naive = XorProgram::lower(&m, Lowering::Naive).xor_count();
            let paar = XorProgram::lower(&m, Lowering::Paar).xor_count();
            assert!(paar <= naive, "seed {seed}: paar {paar} > naive {naive}");
        }
    }

    #[test]
    fn naive_count_matches_density() {
        let m = dense(8, 8, 3);
        let expected: usize = (0..8)
            .map(|r| m.row(r).count_ones().saturating_sub(1))
            .sum();
        assert_eq!(XorProgram::lower(&m, Lowering::Naive).xor_count(), expected);
    }

    #[test]
    fn zero_row_yields_zero_output() {
        let mut m = dense(4, 4, 9);
        for c in 0..4 {
            m.set(2, c, false);
        }
        for strategy in [Lowering::Naive, Lowering::Paar] {
            let p = XorProgram::lower(&m, strategy);
            assert_eq!(p.outputs()[2], OutputSource::Zero);
            exhaustive_equiv(&m, &p);
        }
    }

    #[test]
    fn single_entry_row_is_passthrough() {
        let m = BitMatrix::identity(5);
        let p = XorProgram::lower(&m, Lowering::Naive);
        assert_eq!(p.xor_count(), 0);
        for (i, o) in p.outputs().iter().enumerate() {
            assert_eq!(*o, OutputSource::Signal(i));
        }
    }

    #[test]
    fn depth_of_balanced_tree_is_logarithmic() {
        // A single all-ones row of width 8 → depth 3 balanced tree.
        let m = BitMatrix::from_fn(1, 8, |_, _| true);
        let p = XorProgram::lower(&m, Lowering::Naive);
        assert_eq!(p.xor_count(), 7);
        assert_eq!(p.depth(), 3);
    }

    #[test]
    fn paar_shares_common_pairs() {
        // Two identical dense rows: Paar should share nearly everything.
        let m = BitMatrix::from_fn(2, 8, |_, _| true);
        let naive = XorProgram::lower(&m, Lowering::Naive);
        let paar = XorProgram::lower(&m, Lowering::Paar);
        assert_eq!(naive.xor_count(), 14);
        assert!(paar.xor_count() <= 8, "got {}", paar.xor_count());
        exhaustive_equiv(&m, &paar);
    }

    #[test]
    fn display_mentions_counts() {
        let m = BitMatrix::identity(3);
        let p = XorProgram::lower(&m, Lowering::Naive);
        let s = p.to_string();
        assert!(s.contains("3 inputs"));
        assert!(s.contains("0 XORs"));
    }
}
