//! Concrete verified MDS constructions.

use std::fmt;
use std::sync::OnceLock;

use scfi_gf2::{BitMatrix, BitVec, Gf2Poly};

use crate::{BlockMatrix, Lowering, XorProgram};

/// Which MDS matrix to instantiate in the diffusion layer.
///
/// The SCFI paper selects Duval–Leurent's `M^{8,3}_{4,6}` over
/// `F₂[α], α: X⁸ + X² + 1` for its low XOR count, and notes that "the choice
/// of MDS matrix can be changed according to design requirements" (§5.1).
/// We expose exactly that choice point.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum MdsSpec {
    /// A lightweight 4×4 MDS matrix over the paper's ring
    /// `F₂[α]/(X⁸ + X² + 1)`, found by a deterministic minimal-XOR search
    /// over structured candidates and *verified* MDS via block minors.
    ///
    /// This substitutes for `M^{8,3}_{4,6}` (Duval–Leurent 2018), whose
    /// exact entries the SCFI paper does not reproduce; the security
    /// argument only uses the MDS property (branch number 5), which this
    /// matrix provably has.
    #[default]
    ScfiLightweight,
    /// The AES MixColumns matrix `circ(α, α+1, 1, 1)` over
    /// `GF(2⁸)/0x11B` — a classical, provably-MDS reference with a higher
    /// XOR count.
    AesMixColumns,
    /// A 2×2 (16-bit) lightweight MDS matrix, branch number 3 — the
    /// smaller matrix §7 of the paper proposes for small `{S_C, X, Mod}`
    /// triples ("adapt the MDS matrix size … to further improve the
    /// area-time product"), trading diffusion for area.
    Lightweight16,
    /// A 3×3 (24-bit) lightweight MDS matrix, branch number 4 — the
    /// intermediate point of the §7 size adaptation.
    Lightweight24,
}

impl MdsSpec {
    /// Builds (and caches) the verified matrix for this spec.
    ///
    /// The first call per spec performs the construction/search and the
    /// block-minor MDS verification; later calls return a cached clone.
    pub fn build(self) -> MdsMatrix {
        static SCFI: OnceLock<MdsMatrix> = OnceLock::new();
        static AES: OnceLock<MdsMatrix> = OnceLock::new();
        static W16: OnceLock<MdsMatrix> = OnceLock::new();
        static W24: OnceLock<MdsMatrix> = OnceLock::new();
        match self {
            MdsSpec::ScfiLightweight => SCFI.get_or_init(|| build_lightweight(4)).clone(),
            MdsSpec::AesMixColumns => AES.get_or_init(build_aes).clone(),
            MdsSpec::Lightweight16 => W16.get_or_init(|| build_lightweight(2)).clone(),
            MdsSpec::Lightweight24 => W24.get_or_init(|| build_lightweight(3)).clone(),
        }
    }

    /// Input/output width in bits of the matrix this spec builds.
    pub fn width(self) -> usize {
        match self {
            MdsSpec::ScfiLightweight | MdsSpec::AesMixColumns => 32,
            MdsSpec::Lightweight16 => 16,
            MdsSpec::Lightweight24 => 24,
        }
    }

    /// The branch number (`k + 1`) of the matrix this spec builds.
    pub fn branch_number(self) -> usize {
        match self {
            MdsSpec::ScfiLightweight | MdsSpec::AesMixColumns => 5,
            MdsSpec::Lightweight16 => 3,
            MdsSpec::Lightweight24 => 4,
        }
    }
}

impl fmt::Display for MdsSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdsSpec::ScfiLightweight => write!(f, "scfi-lightweight"),
            MdsSpec::AesMixColumns => write!(f, "aes-mixcolumns"),
            MdsSpec::Lightweight16 => write!(f, "lightweight-16"),
            MdsSpec::Lightweight24 => write!(f, "lightweight-24"),
        }
    }
}

/// A verified 32-bit MDS diffusion matrix (4 byte lanes), ready to be
/// multiplied or lowered to XOR gates.
///
/// # Example
///
/// ```
/// use scfi_mds::{Lowering, MdsSpec};
///
/// let mds = MdsSpec::AesMixColumns.build();
/// let program = mds.xor_program(Lowering::Paar);
/// assert!(program.xor_count() < 200);
/// ```
#[derive(Clone)]
pub struct MdsMatrix {
    name: String,
    block: BlockMatrix,
    expanded: BitMatrix,
}

impl MdsMatrix {
    fn new(name: impl Into<String>, block: BlockMatrix) -> Self {
        let expanded = block.expand();
        MdsMatrix {
            name: name.into(),
            block,
            expanded,
        }
    }

    /// Human-readable construction name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block (lane) structure.
    pub fn block(&self) -> &BlockMatrix {
        &self.block
    }

    /// The expanded 32×32 binary matrix.
    pub fn matrix(&self) -> &BitMatrix {
        &self.expanded
    }

    /// Input/output width in bits (`k·l`, 32 for the paper's parameters).
    pub fn width(&self) -> usize {
        self.expanded.rows()
    }

    /// Multiplies a 32-bit vector through the matrix.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.width()`.
    pub fn mul(&self, x: &BitVec) -> BitVec {
        self.expanded.mul_vec(x)
    }

    /// Lowers the matrix to a straight-line XOR program.
    pub fn xor_program(&self, strategy: Lowering) -> XorProgram {
        XorProgram::lower(&self.expanded, strategy)
    }

    /// Number of XOR gates under the given lowering — the paper's area
    /// figure of merit for matrix selection (§5.1).
    pub fn xor_count(&self, strategy: Lowering) -> usize {
        self.xor_program(strategy).xor_count()
    }
}

impl fmt::Debug for MdsMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MdsMatrix({}, {}x{} bits, naive XORs {})",
            self.name,
            self.width(),
            self.width(),
            self.expanded.count_ones() - self.width()
        )
    }
}

/// Builds the AES MixColumns block matrix.
fn build_aes() -> MdsMatrix {
    let alpha = Gf2Poly::from_coeffs(0x11B).companion_matrix();
    let entries = [
        Gf2Poly::X,                 // α       (AES 0x02)
        Gf2Poly::from_coeffs(0b11), // α + 1   (AES 0x03)
        Gf2Poly::ONE,               // 1
        Gf2Poly::ONE,               // 1
    ];
    let m = MdsMatrix::new("aes-mixcolumns", circulant(&alpha, &entries));
    assert!(m.block.is_mds(), "AES MixColumns failed the MDS check");
    m
}

/// Builds a `k × k` lightweight matrix over the paper's ring by
/// deterministic search: rank candidate entry tuples by expanded XOR
/// density, return the first circulant (then Hadamard, for k = 4)
/// candidate that passes the exact MDS check.
fn build_lightweight(k: usize) -> MdsMatrix {
    let alpha = Gf2Poly::from_coeffs(0x105).companion_matrix(); // X^8 + X^2 + 1

    // Low-XOR-cost polynomial entries in α, cheapest first. Cost of p(α) as
    // a linear map is roughly count_ones(p(α)) − 8 XORs.
    let pool: Vec<Gf2Poly> = vec![
        Gf2Poly::ONE,
        Gf2Poly::X,
        Gf2Poly::from_coeffs(0b100),  // α²
        Gf2Poly::from_coeffs(0b11),   // 1 + α
        Gf2Poly::from_coeffs(0b101),  // 1 + α²
        Gf2Poly::from_coeffs(0b110),  // α + α²
        Gf2Poly::from_coeffs(0b1000), // α³
        Gf2Poly::from_coeffs(0b1001), // 1 + α³
    ];

    // All entry tuples of length k over the pool.
    let mut tuples: Vec<Vec<Gf2Poly>> = vec![Vec::new()];
    for _ in 0..k {
        tuples = tuples
            .into_iter()
            .flat_map(|t| {
                pool.iter().map(move |&p| {
                    let mut t = t.clone();
                    t.push(p);
                    t
                })
            })
            .collect();
    }
    let mut candidates: Vec<(usize, &'static str, Vec<Gf2Poly>)> = Vec::new();
    for entries in tuples {
        let cost: usize = entries
            .iter()
            .map(|p| p.eval_matrix(&alpha).count_ones())
            .sum();
        candidates.push((cost, "circulant", entries.clone()));
        if k == 4 {
            candidates.push((cost, "hadamard", entries));
        }
    }
    // Deterministic order: by cost, then shape, then entry tuple.
    candidates.sort_by_key(|(cost, shape, e)| {
        (
            *cost,
            *shape,
            e.iter().map(|p| p.coeffs()).collect::<Vec<_>>(),
        )
    });

    for (_, shape, entries) in candidates {
        let block = match shape {
            "circulant" => circulant(&alpha, &entries),
            _ => hadamard(&alpha, &entries),
        };
        if block.is_mds() {
            let name = format!(
                "lightweight-{}x{}-{shape}({})",
                k,
                k,
                entries
                    .iter()
                    .map(|p| format!("{p}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return MdsMatrix::new(name, block);
        }
    }
    unreachable!("no MDS matrix found in candidate pool — pool is known to contain MDS matrices")
}

/// Circulant block matrix: row `i`, column `j` holds
/// `entries[(j − i) mod k]`.
fn circulant(alpha: &BitMatrix, entries: &[Gf2Poly]) -> BlockMatrix {
    let k = entries.len();
    let maps: Vec<BitMatrix> = entries.iter().map(|p| p.eval_matrix(alpha)).collect();
    let mut blocks = Vec::with_capacity(k * k);
    for r in 0..k {
        for c in 0..k {
            blocks.push(maps[(c + k - r) % k].clone());
        }
    }
    BlockMatrix::from_blocks(k, 8, blocks)
}

/// Hadamard block matrix (`k` a power of two): `M[i][j] = entries[i XOR j]`.
fn hadamard(alpha: &BitMatrix, entries: &[Gf2Poly]) -> BlockMatrix {
    let k = entries.len();
    assert!(
        k.is_power_of_two(),
        "Hadamard layout needs a power-of-two k"
    );
    let maps: Vec<BitMatrix> = entries.iter().map(|p| p.eval_matrix(alpha)).collect();
    let mut blocks = Vec::with_capacity(k * k);
    for r in 0..k {
        for c in 0..k {
            blocks.push(maps[r ^ c].clone());
        }
    }
    BlockMatrix::from_blocks(k, 8, blocks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_build_is_mds_and_32_bit() {
        let m = MdsSpec::AesMixColumns.build();
        assert!(m.block().is_mds());
        assert_eq!(m.width(), 32);
        assert!(m.matrix().is_invertible());
    }

    #[test]
    fn scfi_lightweight_is_mds() {
        let m = MdsSpec::ScfiLightweight.build();
        assert!(m.block().is_mds(), "searched matrix must verify as MDS");
        assert_eq!(m.width(), 32);
        assert!(m.matrix().is_invertible());
    }

    #[test]
    fn scfi_lightweight_is_lighter_than_aes() {
        let scfi = MdsSpec::ScfiLightweight.build();
        let aes = MdsSpec::AesMixColumns.build();
        assert!(
            scfi.xor_count(Lowering::Naive) <= aes.xor_count(Lowering::Naive),
            "search should not return something heavier than AES: {} vs {}",
            scfi.xor_count(Lowering::Naive),
            aes.xor_count(Lowering::Naive)
        );
    }

    #[test]
    fn branch_number_five_for_both() {
        for spec in [MdsSpec::ScfiLightweight, MdsSpec::AesMixColumns] {
            assert_eq!(
                spec.build().block().branch_number_single_symbol(),
                5,
                "{spec}"
            );
        }
    }

    #[test]
    fn xor_program_equivalence_sampled() {
        let m = MdsSpec::ScfiLightweight.build();
        for strategy in [Lowering::Naive, Lowering::Paar] {
            let p = m.xor_program(strategy);
            let mut state = 0xDEADBEEFu64;
            for _ in 0..200 {
                state ^= state >> 12;
                state ^= state << 25;
                state ^= state >> 27;
                let x = BitVec::from_u64(state.wrapping_mul(0x2545F4914F6CDD1D) & 0xFFFF_FFFF, 32);
                assert_eq!(p.eval(&x), m.mul(&x));
            }
        }
    }

    #[test]
    fn paar_reduces_xor_count_on_mds() {
        let m = MdsSpec::AesMixColumns.build();
        assert!(m.xor_count(Lowering::Paar) < m.xor_count(Lowering::Naive));
    }

    #[test]
    fn build_is_cached_and_deterministic() {
        let a = MdsSpec::ScfiLightweight.build();
        let b = MdsSpec::ScfiLightweight.build();
        assert_eq!(a.name(), b.name());
        assert_eq!(a.matrix(), b.matrix());
    }

    #[test]
    fn avalanche_single_bit_hits_all_lanes() {
        let m = MdsSpec::ScfiLightweight.build();
        for bit in 0..32 {
            let mut x = BitVec::zeros(32);
            x.set(bit, true);
            let y = m.mul(&x);
            assert_eq!(
                m.block().symbol_weight(&y),
                4,
                "single input bit {bit} must disturb all 4 output lanes"
            );
        }
    }

    #[test]
    fn display_and_debug() {
        let m = MdsSpec::AesMixColumns.build();
        assert!(format!("{m:?}").contains("aes-mixcolumns"));
        assert_eq!(MdsSpec::AesMixColumns.to_string(), "aes-mixcolumns");
        assert_eq!(MdsSpec::Lightweight16.to_string(), "lightweight-16");
    }

    #[test]
    fn small_matrices_are_mds_with_reduced_branch_numbers() {
        let m16 = MdsSpec::Lightweight16.build();
        assert!(m16.block().is_mds());
        assert_eq!(m16.width(), 16);
        assert_eq!(m16.block().branch_number_single_symbol(), 3);

        let m24 = MdsSpec::Lightweight24.build();
        assert!(m24.block().is_mds());
        assert_eq!(m24.width(), 24);
        assert_eq!(m24.block().branch_number_single_symbol(), 4);
    }

    #[test]
    fn smaller_matrices_cost_fewer_xors() {
        let x16 = MdsSpec::Lightweight16.build().xor_count(Lowering::Paar);
        let x24 = MdsSpec::Lightweight24.build().xor_count(Lowering::Paar);
        let x32 = MdsSpec::ScfiLightweight.build().xor_count(Lowering::Paar);
        assert!(x16 < x24, "{x16} vs {x24}");
        assert!(x24 < x32, "{x24} vs {x32}");
    }

    #[test]
    fn spec_metadata_is_consistent() {
        for spec in [
            MdsSpec::ScfiLightweight,
            MdsSpec::AesMixColumns,
            MdsSpec::Lightweight16,
            MdsSpec::Lightweight24,
        ] {
            let m = spec.build();
            assert_eq!(m.width(), spec.width(), "{spec}");
            assert_eq!(
                m.block().branch_number_single_symbol(),
                spec.branch_number(),
                "{spec}"
            );
        }
    }
}
