//! Differential property tests: the multi-word [`PackedSimulator`]
//! against the scalar [`Simulator`], lane by lane, over randomized
//! sequential netlists, per-lane register preloads, per-lane input
//! streams and per-lane fault masks (net flips/stucks, pin flips/stucks,
//! register flips), at every supported wave width `W` ∈ {1, 2, 4}. The
//! scalar engine is the oracle; any divergence on any lane in any cycle
//! fails the case.

use proptest::prelude::*;
use scfi_netlist::{
    extract_lane, lane_mask, CellId, Module, ModuleBuilder, NetId, PackedNetlist, PackedSimulator,
    Simulator, LANES,
};

const N_INPUTS: usize = 4;
const CYCLES: usize = 3;

/// A recipe for one gate: opcode and operand picks (resolved modulo the
/// net pool, so any random tuple is valid).
type GateSpec = (u8, usize, usize);

/// A recipe for one fault: site kind, cell pick, pin pick, effect pick.
type FaultSpec = (u8, usize, u8, u8);

/// Builds a random sequential module: `n_regs` flip-flops (alternating
/// reset values), a random combinational DAG over inputs + register
/// outputs, and random register feedback. Outputs expose the last net and
/// every register so divergence is observable at the ports too.
fn build(recipe: &[GateSpec], n_regs: usize, dff_srcs: &[usize]) -> Module {
    let mut b = ModuleBuilder::new("packed_diff");
    let inputs: Vec<NetId> = (0..N_INPUTS).map(|i| b.input(format!("i{i}"))).collect();
    let regs: Vec<NetId> = (0..n_regs).map(|i| b.dff_uninit(i % 2 == 0)).collect();
    let mut nets = inputs;
    nets.extend(&regs);
    for &(op, a, c) in recipe {
        let (na, nc) = (nets[a % nets.len()], nets[c % nets.len()]);
        let net = match op % 9 {
            0 => b.and2(na, nc),
            1 => b.or2(na, nc),
            2 => b.xor2(na, nc),
            3 => b.nand2(na, nc),
            4 => b.nor2(na, nc),
            5 => b.xnor2(na, nc),
            6 => b.not(na),
            7 => b.buf(na),
            _ => {
                let sel = nets[(a ^ c) % nets.len()];
                b.mux(sel, na, nc)
            }
        };
        nets.push(net);
    }
    for (i, &q) in regs.iter().enumerate() {
        b.set_dff_input(q, nets[dff_srcs[i] % nets.len()]);
    }
    b.output("y", *nets.last().expect("nonempty"));
    for (i, &q) in regs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("valid random module")
}

/// Arms one decoded fault on both engines (packed in `lane` only).
fn arm_both<const W: usize>(
    module: &Module,
    packed: &mut PackedSimulator<'_, W>,
    scalar: &mut Simulator<'_>,
    lane: usize,
    spec: FaultSpec,
) {
    let (site, cell_pick, pin_pick, effect) = spec;
    let cell = CellId((cell_pick % module.len()) as u32);
    let mask = lane_mask::<W>(lane);
    match site % 3 {
        0 => match effect % 3 {
            0 => {
                packed.set_net_flip(cell.net(), mask);
                scalar.set_net_flip(cell.net());
            }
            e => {
                let v = e == 2;
                packed.set_net_stuck(cell.net(), v, mask);
                scalar.set_net_stuck(cell.net(), v);
            }
        },
        1 => {
            let arity = module.cell(cell).kind.arity();
            if arity == 0 {
                return; // inputs/constants have no pins to fault
            }
            let pin = pin_pick as usize % arity;
            match effect % 3 {
                0 => {
                    packed.set_pin_flip(cell, pin, mask);
                    scalar.set_pin_flip(cell, pin);
                }
                e => {
                    let v = e == 2;
                    packed.set_pin_stuck(cell, pin, v, mask);
                    scalar.set_pin_stuck(cell, pin, v);
                }
            }
        }
        _ => {
            let regs = module.registers();
            if regs.is_empty() {
                return;
            }
            let reg = regs[cell_pick % regs.len()];
            packed.flip_register(reg, mask);
            scalar.flip_register(reg);
        }
    }
}

/// Steps the packed simulator once and every scalar lane once, asserting
/// output and register equality on every armed lane.
fn step_and_compare<const W: usize>(
    packed: &mut PackedSimulator<'_, W>,
    scalars: &mut [Simulator<'_>],
    input_words: &[[u64; W]],
    cycle: &str,
) -> Result<(), TestCaseError> {
    let mut out_words = Vec::new();
    packed.step_into(input_words, &mut out_words);
    let mut lane_bits = Vec::new();
    for (lane, scalar) in scalars.iter_mut().enumerate() {
        let inputs: Vec<bool> = input_words
            .iter()
            .map(|w| (w[lane / LANES] >> (lane % LANES)) & 1 == 1)
            .collect();
        let expect_out = scalar.step(&inputs);
        extract_lane(&out_words, lane, &mut lane_bits);
        prop_assert_eq!(
            &lane_bits,
            &expect_out,
            "{}: lane {} outputs diverged",
            cycle,
            lane
        );
        extract_lane(packed.register_words(), lane, &mut lane_bits);
        prop_assert_eq!(
            &lane_bits,
            &scalar.register_values().to_vec(),
            "{}: lane {} registers diverged",
            cycle,
            lane
        );
    }
    Ok(())
}

/// The differential case body, generic over the wave width: random
/// sequential netlists under per-lane fault sets — the packed engine
/// equals `lane_faults.len()` scalar simulations in lock-step, through
/// fault arming, [`CYCLES`] faulted cycles, a `clear_faults` on both
/// engines and one fault-free recovery cycle. Lane `l` of the wave maps
/// to scalar oracle `l`, so word boundaries are crossed whenever more
/// than 64 lanes are drawn.
fn run_case<const W: usize>(
    recipe: &[GateSpec],
    n_regs: usize,
    dff_srcs: &[usize],
    init_word: u64,
    input_streams: &[Vec<u64>],
    lane_faults: &[Vec<FaultSpec>],
) -> Result<(), TestCaseError> {
    let module = build(recipe, n_regs, dff_srcs);
    let compiled = PackedNetlist::compile(&module);
    let mut packed = PackedSimulator::<W>::new(&compiled);

    // Per-lane register preloads: lane l gets the bits of `init_word`
    // rotated by l, giving distinct but deterministic states per lane.
    let lanes = lane_faults.len();
    let n_regs = module.registers().len();
    let mut reg_words = vec![[0u64; W]; n_regs];
    for lane in 0..lanes {
        let rot = init_word.rotate_left((lane % 64) as u32);
        let mask = lane_mask::<W>(lane);
        for (i, w) in reg_words.iter_mut().enumerate() {
            if (rot >> (i % 64)) & 1 == 1 {
                for k in 0..W {
                    w[k] |= mask[k];
                }
            }
        }
    }
    packed.set_register_words(&reg_words);

    let mut scalars: Vec<Simulator<'_>> = (0..lanes)
        .map(|lane| {
            let mut s = Simulator::new(&module);
            let rot = init_word.rotate_left((lane % 64) as u32);
            let regs: Vec<bool> = (0..n_regs).map(|i| (rot >> (i % 64)) & 1 == 1).collect();
            s.set_register_values(&regs);
            s
        })
        .collect();

    // Arm the per-lane fault sets on both engines (after the preload, so
    // register flips mutate the loaded state on both sides).
    for (lane, faults) in lane_faults.iter().enumerate() {
        for &spec in faults {
            arm_both(&module, &mut packed, &mut scalars[lane], lane, spec);
        }
    }

    // Input waves: lane l's input stream is a lane-rotated view of the
    // drawn words, so lanes in different words see different vectors.
    let wave_inputs: Vec<Vec<[u64; W]>> = input_streams
        .iter()
        .map(|words| {
            let mut wave = vec![[0u64; W]; words.len()];
            for lane in 0..lanes {
                let mask = lane_mask::<W>(lane);
                for (j, &w) in words.iter().enumerate() {
                    if (w.rotate_left((lane % 64) as u32)) & 1 == 1 {
                        for k in 0..W {
                            wave[j][k] |= mask[k];
                        }
                    }
                }
            }
            wave
        })
        .collect();

    for (cycle, words) in wave_inputs.iter().enumerate() {
        step_and_compare(&mut packed, &mut scalars, words, &format!("cycle {cycle}"))?;
    }

    // Clearing faults must fully restore fault-free behavior (the packed
    // engine resets its dirty masks sparsely — a stale mask would show up
    // here).
    packed.clear_faults();
    for s in &mut scalars {
        s.clear_faults();
    }
    step_and_compare(
        &mut packed,
        &mut scalars,
        &wave_inputs[0],
        "post-clear cycle",
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Single-word waves (64 lanes): the historical differential check.
    #[test]
    fn packed_matches_scalar_lane_by_lane_w1(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..32),
        n_regs in 1usize..4,
        dff_srcs in proptest::collection::vec(any::<usize>(), 4),
        init_word in any::<u64>(),
        input_streams in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), N_INPUTS), CYCLES),
        lane_faults in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>(), any::<u8>()), 0..3),
            1..=LANES),
    ) {
        run_case::<1>(&recipe, n_regs, &dff_srcs, init_word, &input_streams, &lane_faults)?;
    }

    /// Two-word waves (128 lanes): lane counts drawn past the first word
    /// boundary so faults, preloads and inputs land in both words.
    #[test]
    fn packed_matches_scalar_lane_by_lane_w2(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..24),
        n_regs in 1usize..4,
        dff_srcs in proptest::collection::vec(any::<usize>(), 4),
        init_word in any::<u64>(),
        input_streams in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), N_INPUTS), CYCLES),
        lane_faults in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>(), any::<u8>()), 0..3),
            (LANES + 1)..=(2 * LANES)),
    ) {
        run_case::<2>(&recipe, n_regs, &dff_srcs, init_word, &input_streams, &lane_faults)?;
    }

    /// Four-word waves (256 lanes): lane counts spanning all four words.
    #[test]
    fn packed_matches_scalar_lane_by_lane_w4(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..16),
        n_regs in 1usize..4,
        dff_srcs in proptest::collection::vec(any::<usize>(), 4),
        init_word in any::<u64>(),
        input_streams in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), N_INPUTS), CYCLES),
        lane_faults in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>(), any::<u8>()), 0..3),
            (3 * LANES + 1)..=(4 * LANES)),
    ) {
        run_case::<4>(&recipe, n_regs, &dff_srcs, init_word, &input_streams, &lane_faults)?;
    }
}
