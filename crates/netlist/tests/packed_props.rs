//! Differential property tests: the 64-lane [`PackedSimulator`] against
//! the scalar [`Simulator`], lane by lane, over randomized sequential
//! netlists, per-lane register preloads, per-lane input streams and
//! per-lane fault masks (net flips/stucks, pin flips/stucks, register
//! flips). The scalar engine is the oracle; any divergence on any lane in
//! any cycle fails the case.

use proptest::prelude::*;
use scfi_netlist::{
    extract_lane, CellId, Module, ModuleBuilder, NetId, PackedNetlist, PackedSimulator, Simulator,
    LANES,
};

const N_INPUTS: usize = 4;
const CYCLES: usize = 3;

/// A recipe for one gate: opcode and operand picks (resolved modulo the
/// net pool, so any random tuple is valid).
type GateSpec = (u8, usize, usize);

/// A recipe for one fault: site kind, cell pick, pin pick, effect pick.
type FaultSpec = (u8, usize, u8, u8);

/// Builds a random sequential module: `n_regs` flip-flops (alternating
/// reset values), a random combinational DAG over inputs + register
/// outputs, and random register feedback. Outputs expose the last net and
/// every register so divergence is observable at the ports too.
fn build(recipe: &[GateSpec], n_regs: usize, dff_srcs: &[usize]) -> Module {
    let mut b = ModuleBuilder::new("packed_diff");
    let inputs: Vec<NetId> = (0..N_INPUTS).map(|i| b.input(format!("i{i}"))).collect();
    let regs: Vec<NetId> = (0..n_regs).map(|i| b.dff_uninit(i % 2 == 0)).collect();
    let mut nets = inputs;
    nets.extend(&regs);
    for &(op, a, c) in recipe {
        let (na, nc) = (nets[a % nets.len()], nets[c % nets.len()]);
        let net = match op % 9 {
            0 => b.and2(na, nc),
            1 => b.or2(na, nc),
            2 => b.xor2(na, nc),
            3 => b.nand2(na, nc),
            4 => b.nor2(na, nc),
            5 => b.xnor2(na, nc),
            6 => b.not(na),
            7 => b.buf(na),
            _ => {
                let sel = nets[(a ^ c) % nets.len()];
                b.mux(sel, na, nc)
            }
        };
        nets.push(net);
    }
    for (i, &q) in regs.iter().enumerate() {
        b.set_dff_input(q, nets[dff_srcs[i] % nets.len()]);
    }
    b.output("y", *nets.last().expect("nonempty"));
    for (i, &q) in regs.iter().enumerate() {
        b.output(format!("q{i}"), q);
    }
    b.finish().expect("valid random module")
}

/// Arms one decoded fault on both engines (packed in `lane` only).
fn arm_both(
    module: &Module,
    packed: &mut PackedSimulator<'_>,
    scalar: &mut Simulator<'_>,
    lane: usize,
    spec: FaultSpec,
) {
    let (site, cell_pick, pin_pick, effect) = spec;
    let cell = CellId((cell_pick % module.len()) as u32);
    let mask = 1u64 << lane;
    match site % 3 {
        0 => match effect % 3 {
            0 => {
                packed.set_net_flip(cell.net(), mask);
                scalar.set_net_flip(cell.net());
            }
            e => {
                let v = e == 2;
                packed.set_net_stuck(cell.net(), v, mask);
                scalar.set_net_stuck(cell.net(), v);
            }
        },
        1 => {
            let arity = module.cell(cell).kind.arity();
            if arity == 0 {
                return; // inputs/constants have no pins to fault
            }
            let pin = pin_pick as usize % arity;
            match effect % 3 {
                0 => {
                    packed.set_pin_flip(cell, pin, mask);
                    scalar.set_pin_flip(cell, pin);
                }
                e => {
                    let v = e == 2;
                    packed.set_pin_stuck(cell, pin, v, mask);
                    scalar.set_pin_stuck(cell, pin, v);
                }
            }
        }
        _ => {
            let regs = module.registers();
            if regs.is_empty() {
                return;
            }
            let reg = regs[cell_pick % regs.len()];
            packed.flip_register(reg, mask);
            scalar.flip_register(reg);
        }
    }
}

/// Steps the packed simulator once and every scalar lane once, asserting
/// output and register equality on every armed lane.
fn step_and_compare(
    packed: &mut PackedSimulator<'_>,
    scalars: &mut [Simulator<'_>],
    input_words: &[u64],
    cycle: &str,
) -> Result<(), TestCaseError> {
    let mut out_words = Vec::new();
    packed.step_into(input_words, &mut out_words);
    let mut lane_bits = Vec::new();
    for (lane, scalar) in scalars.iter_mut().enumerate() {
        let inputs: Vec<bool> = input_words.iter().map(|&w| (w >> lane) & 1 == 1).collect();
        let expect_out = scalar.step(&inputs);
        extract_lane(&out_words, lane, &mut lane_bits);
        prop_assert_eq!(
            &lane_bits,
            &expect_out,
            "{}: lane {} outputs diverged",
            cycle,
            lane
        );
        extract_lane(packed.register_words(), lane, &mut lane_bits);
        prop_assert_eq!(
            &lane_bits,
            &scalar.register_values().to_vec(),
            "{}: lane {} registers diverged",
            cycle,
            lane
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random sequential netlists under per-lane fault sets: the packed
    /// engine equals 64 scalar simulations in lock-step, through fault
    /// arming, three faulted cycles, a `clear_faults` on both engines and
    /// one fault-free recovery cycle.
    #[test]
    fn packed_matches_scalar_lane_by_lane(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..32),
        n_regs in 1usize..4,
        dff_srcs in proptest::collection::vec(any::<usize>(), 4),
        init_word in any::<u64>(),
        input_words in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), N_INPUTS), CYCLES),
        lane_faults in proptest::collection::vec(
            proptest::collection::vec((any::<u8>(), any::<usize>(), any::<u8>(), any::<u8>()), 0..3),
            1..=LANES),
    ) {
        let module = build(&recipe, n_regs, &dff_srcs);
        let compiled = PackedNetlist::compile(&module);
        let mut packed = PackedSimulator::new(&compiled);

        // Per-lane register preloads: lane l gets the bits of
        // `init_word` rotated by l, giving distinct but deterministic
        // states per lane.
        let lanes = lane_faults.len();
        let n_regs = module.registers().len();
        let mut reg_words = vec![0u64; n_regs];
        for (lane, _) in lane_faults.iter().enumerate() {
            let rot = init_word.rotate_left(lane as u32);
            for (i, w) in reg_words.iter_mut().enumerate() {
                if (rot >> i) & 1 == 1 {
                    *w |= 1 << lane;
                }
            }
        }
        packed.set_register_words(&reg_words);

        let mut scalars: Vec<Simulator<'_>> = (0..lanes)
            .map(|lane| {
                let mut s = Simulator::new(&module);
                let rot = init_word.rotate_left(lane as u32);
                let regs: Vec<bool> = (0..n_regs).map(|i| (rot >> i) & 1 == 1).collect();
                s.set_register_values(&regs);
                s
            })
            .collect();

        // Arm the per-lane fault sets on both engines (after the preload,
        // so register flips mutate the loaded state on both sides).
        for (lane, faults) in lane_faults.iter().enumerate() {
            for &spec in faults {
                arm_both(&module, &mut packed, &mut scalars[lane], lane, spec);
            }
        }

        for (cycle, words) in input_words.iter().enumerate() {
            step_and_compare(&mut packed, &mut scalars, words, &format!("cycle {cycle}"))?;
        }

        // Clearing faults must fully restore fault-free behavior (the
        // packed engine resets its dirty masks sparsely — a stale mask
        // would show up here).
        packed.clear_faults();
        for s in &mut scalars {
            s.clear_faults();
        }
        step_and_compare(&mut packed, &mut scalars, &input_words[0], "post-clear cycle")?;
    }
}
