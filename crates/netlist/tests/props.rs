//! Property-based tests for the netlist layer: randomly built
//! combinational DAGs simulate exactly like a software reference model,
//! with and without structural hashing interference.

use proptest::prelude::*;
use scfi_netlist::{ModuleBuilder, ModuleStats, NetId, Simulator};

/// A recipe for one gate: opcode and two operand picks.
type GateSpec = (u8, usize, usize);

/// Builds a module from a recipe. The recipe itself — not the net graph —
/// doubles as the software reference model (see [`eval_recipe`]), so a
/// builder bug cannot hide in the model.
fn build(recipe: &[GateSpec]) -> scfi_netlist::Module {
    let mut b = ModuleBuilder::new("random");
    let inputs: Vec<NetId> = (0..6).map(|i| b.input(format!("i{i}"))).collect();
    let mut nets: Vec<NetId> = inputs;
    for &(op, a, c) in recipe {
        let (na, nc) = (nets[a % nets.len()], nets[c % nets.len()]);
        let net = match op % 7 {
            0 => b.and2(na, nc),
            1 => b.or2(na, nc),
            2 => b.xor2(na, nc),
            3 => b.nand2(na, nc),
            4 => b.nor2(na, nc),
            5 => b.xnor2(na, nc),
            _ => b.not(na),
        };
        nets.push(net);
    }
    let out = *nets.last().expect("at least inputs");
    b.output("y", out);
    b.finish().expect("valid")
}

/// Reference evaluation of the recipe on a given input vector.
fn eval_recipe(recipe: &[GateSpec], inputs: &[bool]) -> Vec<bool> {
    let mut vals: Vec<bool> = inputs.to_vec();
    for &(op, a, c) in recipe {
        let (na, nc) = (vals[a % vals.len()], vals[c % vals.len()]);
        let v = match op % 7 {
            0 => na & nc,
            1 => na | nc,
            2 => na ^ nc,
            3 => !(na & nc),
            4 => !(na | nc),
            5 => !(na ^ nc),
            _ => !na,
        };
        vals.push(v);
    }
    vals
}

proptest! {
    /// Random combinational DAGs: the simulator output equals the software
    /// reference for every input vector (exhaustive over 6 inputs).
    #[test]
    fn random_dag_matches_reference(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..40),
    ) {
        let module = build(&recipe);
        let mut sim = Simulator::new(&module);
        for bits in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            let expect = *eval_recipe(&recipe, &inputs).last().expect("nonempty");
            let got = sim.step(&inputs)[0];
            prop_assert_eq!(got, expect, "inputs {:#08b}", bits);
        }
    }

    /// Structural hashing never changes observable behavior: emitting the
    /// same recipe twice (one module with barrier, one without) yields
    /// simulation-identical outputs, and strash never increases cells.
    #[test]
    fn strash_is_semantics_preserving(
        recipe in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>()), 1..25),
    ) {
        // Module A: recipe emitted twice with strash active throughout.
        let build_double = |barrier: bool| {
            let mut b = ModuleBuilder::new("double");
            let inputs: Vec<NetId> = (0..6).map(|i| b.input(format!("i{i}"))).collect();
            let emit = |b: &mut ModuleBuilder| {
                let mut nets = inputs.clone();
                for &(op, a, c) in &recipe {
                    let (na, nc) = (nets[a % nets.len()], nets[c % nets.len()]);
                    let net = match op % 7 {
                        0 => b.and2(na, nc),
                        1 => b.or2(na, nc),
                        2 => b.xor2(na, nc),
                        3 => b.nand2(na, nc),
                        4 => b.nor2(na, nc),
                        5 => b.xnor2(na, nc),
                        _ => b.not(na),
                    };
                    nets.push(net);
                }
                *nets.last().expect("nonempty")
            };
            let first = emit(&mut b);
            if barrier {
                b.strash_barrier();
            }
            let second = emit(&mut b);
            let y = b.xor2(first, second);
            b.output("diff", y);
            b.finish().expect("valid")
        };
        let merged = build_double(false);
        let fenced = build_double(true);
        // The two copies compute the same function, so diff == 0 always.
        let mut sim_m = Simulator::new(&merged);
        let mut sim_f = Simulator::new(&fenced);
        for bits in [0u32, 1, 7, 13, 42, 63] {
            let inputs: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            prop_assert!(!sim_m.step(&inputs)[0]);
            prop_assert!(!sim_f.step(&inputs)[0]);
        }
        // With strash, the merged module cannot be larger than the fenced.
        prop_assert!(
            ModuleStats::of(&merged).gate_count() <= ModuleStats::of(&fenced).gate_count()
        );
    }
}
