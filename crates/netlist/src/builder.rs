//! Incremental netlist construction.

use std::collections::HashMap;

use scfi_gf2::BitVec;

use crate::ir::{validate_cells, Cell, CellKind, Module, NetId, ValidateError};

/// Structural-hashing key: gate kind discriminant plus operand nets
/// (commutative operands normalized to ascending order).
type StrashKey = (u8, u32, u32, u32);

/// Builds a [`Module`] cell by cell.
///
/// The builder hands out [`NetId`]s as logic is emitted and performs the
/// canonicalizations a synthesis front-end would: constant folding for
/// gates fed by constants, `x ^ x = 0`, duplicate-operand collapsing, and
/// **structural hashing** — emitting the same gate over the same operands
/// twice returns the first net instead of a duplicate cell.
///
/// Structural hashing is exactly the optimization the SCFI paper warns
/// about for redundancy countermeasures (§6.4: "a synthesis tool aiming to
/// meet timing and area constraints could weaken the security when
/// optimizing the design"): it would merge replicated next-state logic
/// back into one copy. Call [`ModuleBuilder::strash_barrier`] before
/// emitting each replica to mark it `dont_touch`-style and keep the copies
/// apart.
///
/// Flip-flops are created with [`ModuleBuilder::dff_uninit`] and connected
/// later with [`ModuleBuilder::set_dff_input`], which is how state feedback
/// loops are expressed.
///
/// # Example
///
/// ```
/// use scfi_netlist::ModuleBuilder;
///
/// let mut b = ModuleBuilder::new("majority");
/// let (a, x, c) = (b.input("a"), b.input("b"), b.input("c"));
/// let ab = b.and2(a, x);
/// let ac = b.and2(a, c);
/// let bc = b.and2(x, c);
/// let t = b.or2(ab, ac);
/// let y = b.or2(t, bc);
/// b.output("maj", y);
/// let module = b.finish()?;
/// assert_eq!(module.outputs().len(), 1);
/// # Ok::<(), scfi_netlist::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct ModuleBuilder {
    name: String,
    cells: Vec<Cell>,
    inputs: Vec<NetId>,
    outputs: Vec<(String, NetId)>,
    const0: Option<NetId>,
    const1: Option<NetId>,
    strash: HashMap<StrashKey, NetId>,
}

impl ModuleBuilder {
    /// Starts a new module with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            const0: None,
            const1: None,
            strash: HashMap::new(),
        }
    }

    fn push(&mut self, kind: CellKind, pins: Vec<NetId>, name: Option<String>) -> NetId {
        let id = NetId(self.cells.len() as u32);
        self.cells.push(Cell { kind, pins, name });
        id
    }

    /// Clears the structural-hashing table. Gates emitted afterwards are
    /// never merged with gates emitted before the barrier — the
    /// `dont_touch` fence that keeps redundant logic replicas physically
    /// separate (cf. paper §6.4 on optimization weakening redundancy).
    pub fn strash_barrier(&mut self) {
        self.strash.clear();
    }

    /// Emits a 2-input gate through the structural-hashing table.
    fn gate2(&mut self, kind: CellKind, a: NetId, b: NetId, commutative: bool) -> NetId {
        let (x, y) = if commutative && b.0 < a.0 {
            (b, a)
        } else {
            (a, b)
        };
        let tag = match kind {
            CellKind::And => 0u8,
            CellKind::Or => 1,
            CellKind::Xor => 2,
            CellKind::Nand => 3,
            CellKind::Nor => 4,
            CellKind::Xnor => 5,
            _ => unreachable!("gate2 handles 2-input gates only"),
        };
        let key = (tag, x.0, y.0, u32::MAX);
        if let Some(&net) = self.strash.get(&key) {
            return net;
        }
        let net = self.push(kind, vec![x, y], None);
        self.strash.insert(key, net);
        net
    }

    /// Declares an input port. Port order = call order.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(CellKind::Input, vec![], Some(name.into()));
        self.inputs.push(id);
        id
    }

    /// Declares a vector of input ports named `name[0..width]`, LSB first.
    pub fn input_word(&mut self, name: &str, width: usize) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// A constant driver (deduplicated per module).
    pub fn constant(&mut self, value: bool) -> NetId {
        let slot = if value {
            &mut self.const1
        } else {
            &mut self.const0
        };
        if let Some(id) = *slot {
            return id;
        }
        let id = NetId(self.cells.len() as u32);
        self.cells.push(Cell {
            kind: CellKind::Const(value),
            pins: vec![],
            name: None,
        });
        if value {
            self.const1 = Some(id);
        } else {
            self.const0 = Some(id);
        }
        id
    }

    fn const_value(&self, net: NetId) -> Option<bool> {
        match self.cells[net.index()].kind {
            CellKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Inverter, with constant folding and double-negation elimination.
    pub fn not(&mut self, a: NetId) -> NetId {
        if let Some(v) = self.const_value(a) {
            return self.constant(!v);
        }
        if let CellKind::Not = self.cells[a.index()].kind {
            return self.cells[a.index()].pins[0];
        }
        let key = (6u8, a.0, u32::MAX, u32::MAX);
        if let Some(&net) = self.strash.get(&key) {
            return net;
        }
        let net = self.push(CellKind::Not, vec![a], None);
        self.strash.insert(key, net);
        net
    }

    /// Buffer (identity). Mostly useful as a named probe point.
    pub fn buf(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Buf, vec![a], None)
    }

    /// 2-input AND, with folding.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => self.gate2(CellKind::And, a, b, true),
        }
    }

    /// 2-input OR, with folding.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(true),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => self.gate2(CellKind::Or, a, b, true),
        }
    }

    /// 2-input XOR, with folding.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.constant(false),
            _ => self.gate2(CellKind::Xor, a, b, true),
        }
    }

    /// 2-input XNOR, with folding.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) => b,
            (_, Some(true)) => a,
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ if a == b => self.constant(true),
            _ => self.gate2(CellKind::Xnor, a, b, true),
        }
    }

    /// 2-input NAND, with folding.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(true),
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ => self.gate2(CellKind::Nand, a, b, true),
        }
    }

    /// 2-input NOR, with folding.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => self.constant(false),
            (Some(false), _) => self.not(b),
            (_, Some(false)) => self.not(a),
            _ => self.gate2(CellKind::Nor, a, b, true),
        }
    }

    /// 2:1 mux: returns `sel ? on_true : on_false`.
    pub fn mux(&mut self, sel: NetId, on_false: NetId, on_true: NetId) -> NetId {
        match self.const_value(sel) {
            Some(false) => on_false,
            Some(true) => on_true,
            None if on_false == on_true => on_false,
            None => {
                let key = (7u8, sel.0, on_false.0, on_true.0);
                if let Some(&net) = self.strash.get(&key) {
                    return net;
                }
                let net = self.push(CellKind::Mux, vec![sel, on_false, on_true], None);
                self.strash.insert(key, net);
                net
            }
        }
    }

    /// Creates a flip-flop whose data input is connected later via
    /// [`ModuleBuilder::set_dff_input`]. Returns the `q` net.
    pub fn dff_uninit(&mut self, init: bool) -> NetId {
        self.push(CellKind::Dff { init }, vec![], None)
    }

    /// Connects the data input of a flip-flop created by
    /// [`ModuleBuilder::dff_uninit`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not a flip-flop or is already connected.
    pub fn set_dff_input(&mut self, q: NetId, d: NetId) {
        let cell = &mut self.cells[q.index()];
        assert!(
            cell.kind.is_sequential(),
            "set_dff_input target {q:?} is not a flip-flop"
        );
        assert!(cell.pins.is_empty(), "flip-flop {q:?} already connected");
        cell.pins.push(d);
    }

    /// Declares an output port.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.outputs.push((name.into(), net));
    }

    /// Names a net for debugging/export.
    pub fn name_net(&mut self, net: NetId, name: impl Into<String>) {
        self.cells[net.index()].name = Some(name.into());
    }

    // ----- word-level helpers ------------------------------------------------

    /// AND-reduces a list of nets as a balanced tree. Empty list → const 1.
    pub fn and_all(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, true, Self::and2)
    }

    /// OR-reduces a list of nets as a balanced tree. Empty list → const 0.
    pub fn or_all(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, false, Self::or2)
    }

    /// XOR-reduces a list of nets as a balanced tree. Empty list → const 0.
    pub fn xor_all(&mut self, nets: &[NetId]) -> NetId {
        self.reduce(nets, false, Self::xor2)
    }

    fn reduce(
        &mut self,
        nets: &[NetId],
        empty: bool,
        op: fn(&mut Self, NetId, NetId) -> NetId,
    ) -> NetId {
        if nets.is_empty() {
            return self.constant(empty);
        }
        let mut level = nets.to_vec();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for chunk in level.chunks(2) {
                if chunk.len() == 2 {
                    next.push(op(self, chunk[0], chunk[1]));
                } else {
                    next.push(chunk[0]);
                }
            }
            level = next;
        }
        level[0]
    }

    /// Bitwise XOR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn xor_word(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "word width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    /// ANDs every bit of `word` with the single net `en`.
    pub fn mask_word(&mut self, word: &[NetId], en: NetId) -> Vec<NetId> {
        word.iter().map(|&w| self.and2(w, en)).collect()
    }

    /// Word-level 2:1 mux.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn mux_word(&mut self, sel: NetId, on_false: &[NetId], on_true: &[NetId]) -> Vec<NetId> {
        assert_eq!(on_false.len(), on_true.len(), "word width mismatch");
        on_false
            .iter()
            .zip(on_true)
            .map(|(&f, &t)| self.mux(sel, f, t))
            .collect()
    }

    /// A word of constant drivers matching `bits`.
    pub fn const_word(&mut self, bits: &BitVec) -> Vec<NetId> {
        bits.iter().map(|b| self.constant(b)).collect()
    }

    /// Equality comparator between a word and a constant pattern:
    /// `AND_i (word[i] XNOR pattern[i])`, with the XNORs folded into plain
    /// wires/inverters since the pattern is constant.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq_const(&mut self, word: &[NetId], pattern: &BitVec) -> NetId {
        assert_eq!(word.len(), pattern.len(), "comparator width mismatch");
        let lits: Vec<NetId> = word
            .iter()
            .enumerate()
            .map(|(i, &w)| if pattern.get(i) { w } else { self.not(w) })
            .collect();
        self.and_all(&lits)
    }

    /// Equality comparator between two words.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn eq_word(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "comparator width mismatch");
        let bits: Vec<NetId> = a.iter().zip(b).map(|(&x, &y)| self.xnor2(x, y)).collect();
        self.and_all(&bits)
    }

    /// One-hot select: `OR_i (sel[i] AND words[i])`, bitwise. All words must
    /// share a width; `sel.len()` must equal `words.len()`.
    ///
    /// This is the AND–OR array SCFI's modifier-selection stage (Fig. 7,
    /// step 2) lowers to.
    ///
    /// # Panics
    ///
    /// Panics on width mismatches.
    pub fn onehot_select(&mut self, sel: &[NetId], words: &[Vec<NetId>]) -> Vec<NetId> {
        assert_eq!(sel.len(), words.len(), "selector count mismatch");
        assert!(!words.is_empty(), "one-hot select needs at least one word");
        let width = words[0].len();
        assert!(words.iter().all(|w| w.len() == width), "ragged words");
        let mut out = Vec::with_capacity(width);
        for bit in 0..width {
            let terms: Vec<NetId> = sel
                .iter()
                .zip(words)
                .map(|(&s, w)| self.and2(s, w[bit]))
                .collect();
            out.push(self.or_all(&terms));
        }
        out
    }

    /// A word of flip-flops initialized to `init`, returned as their `q`
    /// nets. Connect with [`ModuleBuilder::set_dff_word`].
    pub fn dff_word_uninit(&mut self, width: usize, init: &BitVec) -> Vec<NetId> {
        assert_eq!(init.len(), width, "init width mismatch");
        (0..width).map(|i| self.dff_uninit(init.get(i))).collect()
    }

    /// Connects the data inputs of a word of flip-flops.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or if any target is not an unconnected
    /// flip-flop.
    pub fn set_dff_word(&mut self, q: &[NetId], d: &[NetId]) {
        assert_eq!(q.len(), d.len(), "register word width mismatch");
        for (&qn, &dn) in q.iter().zip(d) {
            self.set_dff_input(qn, dn);
        }
    }

    /// Declares an output port per bit of `word`, named `name[i]`.
    pub fn output_word(&mut self, name: &str, word: &[NetId]) {
        for (i, &net) in word.iter().enumerate() {
            self.output(format!("{name}[{i}]"), net);
        }
    }

    /// Number of cells emitted so far.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if no cells have been emitted.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Validates and freezes the module.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any flip-flop is unconnected, a pin
    /// dangles, or the combinational logic contains a cycle.
    pub fn finish(self) -> Result<Module, ValidateError> {
        let topo = validate_cells(&self.cells, &self.outputs)?;
        let registers: Vec<crate::CellId> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_sequential())
            .map(|(i, _)| crate::CellId(i as u32))
            .collect();
        let mut reg_pos = vec![u32::MAX; self.cells.len()];
        for (pos, r) in registers.iter().enumerate() {
            reg_pos[r.index()] = pos as u32;
        }
        Ok(Module {
            name: self.name,
            cells: self.cells,
            inputs: self.inputs,
            outputs: self.outputs,
            topo,
            registers,
            reg_pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn constant_folding() {
        let mut b = ModuleBuilder::new("fold");
        let one = b.constant(true);
        let zero = b.constant(false);
        let a = b.input("a");
        assert_eq!(b.and2(a, one), a);
        assert_eq!(b.and2(a, zero), zero);
        assert_eq!(b.or2(a, zero), a);
        assert_eq!(b.or2(a, one), one);
        assert_eq!(b.xor2(a, zero), a);
        assert_eq!(b.xor2(a, a), zero);
        assert_eq!(b.and2(a, a), a);
        assert_eq!(b.mux(one, zero, a), a);
        assert_eq!(b.mux(zero, a, one), a);
        // Constants are deduplicated.
        assert_eq!(b.constant(true), one);
    }

    #[test]
    fn truth_tables() {
        let mut b = ModuleBuilder::new("tt");
        let a = b.input("a");
        let c = b.input("b");
        let and = b.and2(a, c);
        let or = b.or2(a, c);
        let xor = b.xor2(a, c);
        let nand = b.nand2(a, c);
        let nor = b.nor2(a, c);
        let xnor = b.xnor2(a, c);
        let not = b.not(a);
        for (n, net) in [
            ("and", and),
            ("or", or),
            ("xor", xor),
            ("nand", nand),
            ("nor", nor),
            ("xnor", xnor),
            ("not", not),
        ] {
            b.output(n, net);
        }
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        let table = [
            // a, b → and or xor nand nor xnor not
            (
                [false, false],
                [false, false, false, true, true, true, true],
            ),
            ([false, true], [false, true, true, true, false, false, true]),
            (
                [true, false],
                [false, true, true, true, false, false, false],
            ),
            ([true, true], [true, true, false, false, false, true, false]),
        ];
        for (inp, expect) in table {
            assert_eq!(sim.step(&inp), expect.to_vec(), "inputs {inp:?}");
        }
    }

    #[test]
    fn mux_selects() {
        let mut b = ModuleBuilder::new("mux");
        let s = b.input("s");
        let a = b.input("a");
        let c = b.input("b");
        let y = b.mux(s, a, c);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        assert_eq!(sim.step(&[false, true, false]), vec![true]); // sel=0 → a
        assert_eq!(sim.step(&[true, true, false]), vec![false]); // sel=1 → b
    }

    #[test]
    fn reductions_are_correct_and_balanced() {
        let mut b = ModuleBuilder::new("red");
        let word = b.input_word("w", 9);
        let all = b.and_all(&word);
        let any = b.or_all(&word);
        let par = b.xor_all(&word);
        b.output("all", all);
        b.output("any", any);
        b.output("par", par);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        let inp = [true, true, false, true, true, true, true, true, true];
        assert_eq!(sim.step(&inp), vec![false, true, false]);
        let ones = [true; 9];
        assert_eq!(sim.step(&ones), vec![true, true, true]);
    }

    #[test]
    fn empty_reductions_are_identities() {
        let mut b = ModuleBuilder::new("empty");
        assert_eq!(b.and_all(&[]), b.constant(true));
        assert_eq!(b.or_all(&[]), b.constant(false));
        assert_eq!(b.xor_all(&[]), b.constant(false));
    }

    #[test]
    fn eq_const_matches_pattern() {
        let mut b = ModuleBuilder::new("cmp");
        let w = b.input_word("w", 4);
        let hit = b.eq_const(&w, &BitVec::from_u64(0b1010, 4));
        b.output("hit", hit);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        assert_eq!(sim.step(&[false, true, false, true]), vec![true]);
        assert_eq!(sim.step(&[true, true, false, true]), vec![false]);
    }

    #[test]
    fn onehot_select_picks_word() {
        let mut b = ModuleBuilder::new("sel");
        let s = b.input_word("s", 2);
        let w0 = b.const_word(&BitVec::from_u64(0b01, 2));
        let w1 = b.const_word(&BitVec::from_u64(0b10, 2));
        let out = b.onehot_select(&s, &[w0, w1]);
        b.output_word("y", &out);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        assert_eq!(sim.step(&[true, false]), vec![true, false]);
        assert_eq!(sim.step(&[false, true]), vec![false, true]);
        // No selector → all-zero output (infective default).
        assert_eq!(sim.step(&[false, false]), vec![false, false]);
    }

    #[test]
    fn unconnected_dff_rejected() {
        let mut b = ModuleBuilder::new("bad");
        let _q = b.dff_uninit(false);
        assert!(matches!(
            b.finish(),
            Err(ValidateError::UnconnectedDff { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut b = ModuleBuilder::new("bad");
        let q = b.dff_uninit(false);
        let a = b.input("a");
        b.set_dff_input(q, a);
        b.set_dff_input(q, a);
    }

    #[test]
    fn strash_merges_identical_gates() {
        let mut b = ModuleBuilder::new("strash");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.and2(a, c);
        let g2 = b.and2(c, a); // commutative normalization
        assert_eq!(g1, g2);
        let n1 = b.not(a);
        let n2 = b.not(a);
        assert_eq!(n1, n2);
        let m1 = b.mux(a, c, n1);
        let m2 = b.mux(a, c, n1);
        assert_eq!(m1, m2);
        // Different gates over the same operands stay distinct.
        assert_ne!(b.or2(a, c), g1);
    }

    #[test]
    fn strash_barrier_keeps_replicas_apart() {
        let mut b = ModuleBuilder::new("replicas");
        let a = b.input("a");
        let c = b.input("b");
        let g1 = b.xor2(a, c);
        b.strash_barrier();
        let g2 = b.xor2(a, c);
        assert_ne!(g1, g2, "barrier must prevent cross-replica merging");
    }

    #[test]
    fn double_negation_eliminated() {
        let mut b = ModuleBuilder::new("notnot");
        let a = b.input("a");
        let n = b.not(a);
        assert_eq!(b.not(n), a);
    }

    #[test]
    fn fused_gate_folding() {
        let mut b = ModuleBuilder::new("fused");
        let a = b.input("a");
        let one = b.constant(true);
        let zero = b.constant(false);
        assert_eq!(b.xnor2(a, one), a);
        assert_eq!(b.nand2(a, zero), one);
        assert_eq!(b.nor2(a, one), zero);
        assert_eq!(b.xnor2(a, a), one);
        let na = b.not(a);
        assert_eq!(b.nand2(a, one), na);
        assert_eq!(b.nor2(a, zero), na);
        let x = b.xnor2(a, zero);
        assert_eq!(x, na);
    }
}
