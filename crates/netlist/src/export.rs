//! Netlist export: Graphviz DOT and structural Verilog.

use std::fmt::Write as _;

use crate::ir::{CellKind, Module};

impl Module {
    /// Renders the netlist as a Graphviz DOT digraph (cells as nodes, nets
    /// as edges).
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        let _ = writeln!(s, "  rankdir=LR;");
        for (i, cell) in self.cells.iter().enumerate() {
            let label = match &cell.name {
                Some(n) => format!("{} {}", cell.kind.mnemonic(), n),
                None => format!("{} n{}", cell.kind.mnemonic(), i),
            };
            let shape = match cell.kind {
                CellKind::Input => "invtriangle",
                CellKind::Const(_) => "plaintext",
                CellKind::Dff { .. } => "box3d",
                CellKind::Mux => "trapezium",
                _ => "box",
            };
            let _ = writeln!(s, "  c{i} [label=\"{label}\", shape={shape}];");
        }
        for (i, cell) in self.cells.iter().enumerate() {
            for (pin, src) in cell.pins.iter().enumerate() {
                let _ = writeln!(s, "  c{} -> c{i} [taillabel=\"{pin}\"];", src.0);
            }
        }
        for (name, net) in &self.outputs {
            let _ = writeln!(s, "  \"out_{name}\" [shape=triangle];");
            let _ = writeln!(s, "  c{} -> \"out_{name}\";", net.0);
        }
        let _ = writeln!(s, "}}");
        s
    }

    /// Renders the netlist as structural Verilog (one `assign` per gate, a
    /// single always-block per flip-flop, active-high synchronous reset).
    pub fn to_verilog(&self) -> String {
        let mut s = String::new();
        let inputs: Vec<String> = self
            .inputs
            .iter()
            .map(|n| self.port_name(n.index()))
            .collect();
        let outputs: Vec<String> = self.outputs.iter().map(|(n, _)| sanitize(n)).collect();
        let _ = writeln!(s, "module {} (", sanitize(&self.name));
        let _ = writeln!(s, "  input wire clk,");
        let _ = writeln!(s, "  input wire rst,");
        for i in &inputs {
            let _ = writeln!(s, "  input wire {i},");
        }
        for (k, o) in outputs.iter().enumerate() {
            let comma = if k + 1 == outputs.len() { "" } else { "," };
            let _ = writeln!(s, "  output wire {o}{comma}");
        }
        let _ = writeln!(s, ");");
        // Wire declarations.
        for (i, cell) in self.cells.iter().enumerate() {
            match cell.kind {
                CellKind::Input => {}
                CellKind::Dff { .. } => {
                    let _ = writeln!(s, "  reg n{i};");
                }
                _ => {
                    let _ = writeln!(s, "  wire n{i};");
                }
            }
        }
        // Input aliases.
        for net in &self.inputs {
            let _ = writeln!(s, "  wire n{} = {};", net.0, self.port_name(net.index()));
        }
        // Gates.
        for (i, cell) in self.cells.iter().enumerate() {
            let p = |k: usize| format!("n{}", cell.pins[k].0);
            let rhs = match cell.kind {
                CellKind::Input => continue,
                CellKind::Const(v) => format!("1'b{}", v as u8),
                CellKind::Buf => p(0),
                CellKind::Not => format!("~{}", p(0)),
                CellKind::And => format!("{} & {}", p(0), p(1)),
                CellKind::Or => format!("{} | {}", p(0), p(1)),
                CellKind::Xor => format!("{} ^ {}", p(0), p(1)),
                CellKind::Nand => format!("~({} & {})", p(0), p(1)),
                CellKind::Nor => format!("~({} | {})", p(0), p(1)),
                CellKind::Xnor => format!("~({} ^ {})", p(0), p(1)),
                CellKind::Mux => format!("{} ? {} : {}", p(0), p(2), p(1)),
                CellKind::Dff { init } => {
                    let _ = writeln!(s, "  always @(posedge clk) begin");
                    let _ = writeln!(s, "    if (rst) n{i} <= 1'b{};", init as u8);
                    let _ = writeln!(s, "    else n{i} <= {};", p(0));
                    let _ = writeln!(s, "  end");
                    continue;
                }
            };
            let _ = writeln!(s, "  assign n{i} = {rhs};");
        }
        for (name, net) in &self.outputs {
            let _ = writeln!(s, "  assign {} = n{};", sanitize(name), net.0);
        }
        let _ = writeln!(s, "endmodule");
        s
    }

    fn port_name(&self, idx: usize) -> String {
        sanitize(
            self.cells[idx]
                .name
                .as_deref()
                .unwrap_or(&format!("p{idx}")),
        )
    }
}

/// Makes a name a legal Verilog identifier.
fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::ModuleBuilder;

    fn demo() -> crate::Module {
        let mut b = ModuleBuilder::new("demo");
        let a = b.input("a");
        let c = b.input("b[0]");
        let q = b.dff_uninit(true);
        let x = b.xor2(a, q);
        let y = b.mux(c, x, a);
        b.set_dff_input(q, y);
        b.output("y", y);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_cells_and_edges() {
        let dot = demo().to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("xor"));
        assert!(dot.contains("->"));
        assert!(dot.contains("out_y"));
    }

    #[test]
    fn verilog_is_structurally_plausible() {
        let v = demo().to_verilog();
        assert!(v.contains("module demo"));
        assert!(v.contains("input wire clk"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("assign y = "));
        assert!(v.contains("endmodule"));
        // Sanitized port name.
        assert!(v.contains("b_0_"));
    }

    #[test]
    fn sanitize_handles_weird_names() {
        assert_eq!(super::sanitize("a[3]"), "a_3_");
        assert_eq!(super::sanitize("3x"), "_3x");
        assert_eq!(super::sanitize(""), "_");
    }
}
