//! VCD (Value Change Dump) waveform recording for the simulator.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ir::{Module, NetId};
use crate::sim::Simulator;

/// Records net values cycle by cycle and renders an IEEE-1364 VCD file —
/// loadable in GTKWave and friends — for debugging hardened netlists.
///
/// # Example
///
/// ```
/// use scfi_netlist::{ModuleBuilder, Simulator, VcdRecorder};
///
/// let mut b = ModuleBuilder::new("t");
/// let a = b.input("a");
/// let q = b.dff_uninit(false);
/// let d = b.xor2(q, a);
/// b.set_dff_input(q, d);
/// b.output("q", q);
/// let m = b.finish()?;
///
/// let mut sim = Simulator::new(&m);
/// let mut vcd = VcdRecorder::new(&m, &[("a", a), ("q", q)]);
/// for inputs in [[true], [false], [true]] {
///     sim.step(&inputs);
///     vcd.sample(&sim);
/// }
/// let text = vcd.render();
/// assert!(text.contains("$enddefinitions"));
/// # Ok::<(), scfi_netlist::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct VcdRecorder {
    module_name: String,
    /// `(display name, net, vcd id)` per tracked signal.
    signals: Vec<(String, NetId, String)>,
    /// One row of sampled values per cycle.
    samples: Vec<Vec<bool>>,
}

impl VcdRecorder {
    /// Starts a recorder tracking the given `(name, net)` pairs.
    pub fn new(module: &Module, signals: &[(&str, NetId)]) -> VcdRecorder {
        let signals = signals
            .iter()
            .enumerate()
            .map(|(i, &(name, net))| (name.to_string(), net, vcd_id(i)))
            .collect();
        VcdRecorder {
            module_name: module.name().to_string(),
            signals,
            samples: Vec::new(),
        }
    }

    /// Tracks every output port of the module.
    pub fn for_outputs(module: &Module) -> VcdRecorder {
        let pairs: Vec<(String, NetId)> = module
            .outputs()
            .iter()
            .map(|(name, net)| (name.clone(), *net))
            .collect();
        let signals = pairs
            .into_iter()
            .enumerate()
            .map(|(i, (name, net))| (name, net, vcd_id(i)))
            .collect();
        VcdRecorder {
            module_name: module.name().to_string(),
            signals,
            samples: Vec::new(),
        }
    }

    /// Samples the tracked nets from a settled simulator (call after each
    /// [`Simulator::step`]).
    pub fn sample(&mut self, sim: &Simulator<'_>) {
        let row = self
            .signals
            .iter()
            .map(|&(_, net, _)| sim.peek(net))
            .collect();
        self.samples.push(row);
    }

    /// Number of sampled cycles.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if nothing has been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Renders the recording as VCD text (1 ns timescale, one timestep per
    /// cycle, only changes emitted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date scfi-repro $end");
        let _ = writeln!(out, "$version scfi-netlist vcd recorder $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.module_name));
        for (name, _, id) in &self.signals {
            let _ = writeln!(out, "$var wire 1 {id} {} $end", sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let mut last: HashMap<&str, bool> = HashMap::new();
        for (t, row) in self.samples.iter().enumerate() {
            let mut changes = String::new();
            for ((_, _, id), &v) in self.signals.iter().zip(row) {
                if last.get(id.as_str()) != Some(&v) {
                    let _ = writeln!(changes, "{}{id}", if v { '1' } else { '0' });
                    last.insert(id, v);
                }
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(out, "#{t}");
                out.push_str(&changes);
            }
        }
        let _ = writeln!(out, "#{}", self.samples.len());
        out
    }
}

/// Short printable-ASCII identifier for signal index `i`.
fn vcd_id(mut i: usize) -> String {
    // VCD identifiers are strings over '!'..'~'.
    let mut s = String::new();
    loop {
        s.push((b'!' + (i % 94) as u8) as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    fn toggle() -> crate::Module {
        let mut b = ModuleBuilder::new("toggle");
        let q = b.dff_uninit(false);
        let n = b.not(q);
        b.set_dff_input(q, n);
        b.output("q", q);
        b.finish().unwrap()
    }

    #[test]
    fn records_and_renders_changes() {
        let m = toggle();
        let mut sim = Simulator::new(&m);
        let mut vcd = VcdRecorder::for_outputs(&m);
        for _ in 0..4 {
            sim.step(&[]);
            vcd.sample(&sim);
        }
        assert_eq!(vcd.len(), 4);
        let text = vcd.render();
        assert!(text.contains("$scope module toggle $end"));
        assert!(text.contains("$var wire 1 ! q $end"));
        // q toggles every cycle: 0,1,0,1 → four change records.
        assert_eq!(text.matches("0!").count() + text.matches("1!").count(), 4);
        assert!(text.contains("#0"));
        assert!(text.contains("#3"));
    }

    #[test]
    fn unchanged_signals_are_not_re_emitted() {
        let mut b = ModuleBuilder::new("const");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        let mut vcd = VcdRecorder::for_outputs(&m);
        for _ in 0..5 {
            sim.step(&[true]);
            vcd.sample(&sim);
        }
        let text = vcd.render();
        assert_eq!(text.matches("1!").count(), 1, "one change only:\n{text}");
    }

    #[test]
    fn vcd_ids_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(vcd_id).collect();
        let set: std::collections::HashSet<&String> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)));
        }
    }

    #[test]
    fn empty_recorder_renders_header_only() {
        let m = toggle();
        let vcd = VcdRecorder::for_outputs(&m);
        assert!(vcd.is_empty());
        let text = vcd.render();
        assert!(text.contains("$enddefinitions"));
    }
}
