//! Cell histograms and logic-depth metrics.

use std::collections::BTreeMap;
use std::fmt;

use crate::ir::{CellKind, Module};

/// Structural statistics of a [`Module`].
///
/// # Example
///
/// ```
/// use scfi_netlist::{ModuleBuilder, ModuleStats};
///
/// let mut b = ModuleBuilder::new("m");
/// let a = b.input("a");
/// let x = b.input("x");
/// let y = b.xor2(a, x);
/// b.output("y", y);
/// let stats = ModuleStats::of(&b.finish().expect("valid"));
/// assert_eq!(stats.gate_count(), 1);
/// assert_eq!(stats.depth(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleStats {
    name: String,
    counts: BTreeMap<&'static str, usize>,
    n_cells: usize,
    n_inputs: usize,
    n_outputs: usize,
    n_registers: usize,
    depth: usize,
}

impl ModuleStats {
    /// Computes statistics for a module.
    pub fn of(module: &Module) -> ModuleStats {
        let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
        for cell in module.cells() {
            *counts.entry(cell.kind.mnemonic()).or_insert(0) += 1;
        }
        // Logic depth: sources (inputs/consts/regs) are level 0; every
        // combinational cell except Buf adds one level.
        let mut level = vec![0usize; module.len()];
        let mut depth = 0usize;
        for &c in module.topo_order() {
            let cell = module.cell(c);
            let in_max = cell
                .pins
                .iter()
                .map(|p| level[p.index()])
                .max()
                .unwrap_or(0);
            let own = if matches!(cell.kind, CellKind::Buf) {
                in_max
            } else {
                in_max + 1
            };
            level[c.index()] = own;
            depth = depth.max(own);
        }
        // Register data inputs also bound the critical path.
        for &r in module.registers() {
            depth = depth.max(level[module.cell(r).pins[0].index()]);
        }
        ModuleStats {
            name: module.name().to_string(),
            counts,
            n_cells: module.len(),
            n_inputs: module.inputs().len(),
            n_outputs: module.outputs().len(),
            n_registers: module.registers().len(),
            depth,
        }
    }

    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Count of cells with the given mnemonic (see
    /// [`CellKind::mnemonic`]).
    pub fn count(&self, mnemonic: &str) -> usize {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// All mnemonic → count pairs, sorted by mnemonic.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, usize)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Total cells including ports and constants.
    pub fn total_cells(&self) -> usize {
        self.n_cells
    }

    /// Combinational + sequential gates (everything except input ports and
    /// constants).
    pub fn gate_count(&self) -> usize {
        self.n_cells - self.count("input") - self.count("const0") - self.count("const1")
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.n_outputs
    }

    /// Number of flip-flops.
    pub fn register_count(&self) -> usize {
        self.n_registers
    }

    /// Longest combinational path, counted in logic levels (buffers free).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl fmt::Display for ModuleStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} cells ({} gates, {} regs), depth {}",
            self.name,
            self.n_cells,
            self.gate_count(),
            self.n_registers,
            self.depth
        )?;
        for (k, v) in &self.counts {
            writeln!(f, "  {k:>7} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    #[test]
    fn histogram_and_depth() {
        let mut b = ModuleBuilder::new("m");
        let w = b.input_word("w", 4);
        let x = b.xor_all(&w); // 3 xors, depth 2 (balanced)
        let q = b.dff_uninit(false);
        let d = b.and2(x, q);
        b.set_dff_input(q, d);
        b.output("x", x);
        let m = b.finish().unwrap();
        let s = ModuleStats::of(&m);
        assert_eq!(s.count("xor"), 3);
        assert_eq!(s.count("and"), 1);
        assert_eq!(s.count("input"), 4);
        assert_eq!(s.register_count(), 1);
        assert_eq!(s.depth(), 3); // xor tree (2) + and (1)
        assert_eq!(s.gate_count(), 5); // 3 xor + 1 and + 1 dff
        assert_eq!(s.input_count(), 4);
        assert_eq!(s.output_count(), 1);
        assert!(s.total_cells() >= 9);
    }

    #[test]
    fn buffers_are_depth_free() {
        let mut b = ModuleBuilder::new("bufs");
        let a = b.input("a");
        let b1 = b.buf(a);
        let b2 = b.buf(b1);
        let y = b.not(b2);
        b.output("y", y);
        let s = ModuleStats::of(&b.finish().unwrap());
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn empty_module_stats() {
        let b = ModuleBuilder::new("empty");
        let s = ModuleStats::of(&b.finish().unwrap());
        assert_eq!(s.total_cells(), 0);
        assert_eq!(s.depth(), 0);
        assert_eq!(s.gate_count(), 0);
    }

    #[test]
    fn display_contains_name_and_counts() {
        let mut b = ModuleBuilder::new("shown");
        let a = b.input("a");
        let y = b.not(a);
        b.output("y", y);
        let s = ModuleStats::of(&b.finish().unwrap());
        let text = s.to_string();
        assert!(text.contains("shown"));
        assert!(text.contains("not"));
    }

    #[test]
    fn counts_iterator_is_sorted() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a");
        let c = b.input("c");
        let x = b.xor2(a, c);
        let y = b.and2(a, x);
        b.output("y", y);
        let s = ModuleStats::of(&b.finish().unwrap());
        let keys: Vec<&str> = s.counts().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
