//! Word-level, bit-parallel simulation: up to 256 independent fault lanes
//! per pass.
//!
//! The scalar [`Simulator`](crate::Simulator) walks the cell graph pointer
//! by pointer and consults hash maps for fault state on every pin read —
//! fine for debugging one trace, ruinous for the §6.4-style campaigns that
//! run *scenarios × fault sites × effects* full simulations. This module
//! trades that flexibility for throughput:
//!
//! * [`PackedNetlist`] compiles a [`Module`] once into a levelized
//!   struct-of-arrays program: one `(opcode, out, a, b, c)` record per
//!   combinational cell in topological order, plus flat index arrays for
//!   inputs, constants, registers and outputs. No `Vec<NetId>` chasing, no
//!   per-cell `match` on [`CellKind`] in the hot loop. The compiled program
//!   is width-agnostic: one compilation serves simulators of every lane
//!   width.
//! * [`PackedSimulator`]`<W>` evaluates that program over `[u64; W]` net
//!   values — a *wave* of `W` lane words, where bit `l` of word `w` is
//!   lane `64·w + l`'s Boolean. `W` is a compile-time constant in
//!   `{1, 2, 4}` ([`LANES`]` · W` = 64, 128 or 256 independent simulations
//!   per gate operation); the per-word inner loops are fully unrolled and
//!   autovectorize to 128-/256-bit SIMD where the target supports it.
//! * Faults are *precompiled masks*, applied per word with AND/OR/XOR:
//!   every net write is `((raw & keep) | force) ^ flip`, so a lane's
//!   stuck-at or transient flip costs the same three bitwise ops per word
//!   whether zero or all lanes are faulted. Pin faults (which scope a
//!   fault to one fanout branch) are sparse per-operation fixups consumed
//!   by a cursor during the topological sweep — nothing in the loop hashes
//!   anything.
//!
//! Fault semantics are bit-for-bit those of the scalar engine (stuck-at
//! applied before flip, faults visible on source nets, register flips
//! mutating stored state), independently in every lane of every word; the
//! differential property tests in `tests/packed_props.rs` pin the engines
//! against each other lane-by-lane at every width.
//!
//! # Example
//!
//! Two lanes of a toggle flip-flop, with lane 1 holding the enable stuck
//! at 0 (single-word wave, `W = 1`):
//!
//! ```
//! use scfi_netlist::{lane_mask, ModuleBuilder, PackedNetlist, PackedSimulator};
//!
//! let mut b = ModuleBuilder::new("toggle");
//! let en = b.input("en");
//! let q = b.dff_uninit(false);
//! let next = b.xor2(q, en);
//! b.set_dff_input(q, next);
//! b.output("q", q);
//! let module = b.finish().expect("valid netlist");
//!
//! let compiled = PackedNetlist::compile(&module);
//! let mut sim = PackedSimulator::<1>::new(&compiled);
//! sim.set_net_stuck(en, false, lane_mask(1)); // lane 1: enable stuck-at-0
//! let mut out = Vec::new();
//! sim.step_into(&[[!0u64]], &mut out); // enable high in every lane
//! assert_eq!(out[0][0] & 0b11, 0b00); // q sampled before the edge
//! sim.step_into(&[[!0u64]], &mut out);
//! assert_eq!(out[0][0] & 0b11, 0b01); // lane 0 toggled, lane 1 froze
//! ```

use crate::ir::{CellId, CellKind, Module, NetId};

/// Number of independent simulation lanes per lane *word*. A
/// [`PackedSimulator`]`<W>` carries [`LANES`]` · W` lanes per pass (see
/// [`PackedSimulator::LANES`]).
pub const LANES: usize = 64;

/// The largest *configurable* lane-word count `W` (256 lanes per wave)
/// for width-tunable campaign code. Widths beyond four words usually stop
/// paying: the per-net working set outgrows L1/L2 while the per-wave
/// occupancy win flattens out. The fixed-width SIMD campaign backend runs
/// at [`SIMD_LANE_WORDS`] anyway, betting on wide vector units.
pub const MAX_LANE_WORDS: usize = 4;

/// The lane-word count of the fixed-width SIMD wave (512 lanes per pass).
/// Eight-word waves are not part of the tunable `{1, 2, 4}` set: they only
/// pay off where the unrolled per-word loops vectorize to 256-/512-bit
/// SIMD, so campaign code exposes them as a distinct backend rather than
/// another width knob.
pub const SIMD_LANE_WORDS: usize = 8;

const OP_BUF: u8 = 0;
const OP_NOT: u8 = 1;
const OP_AND: u8 = 2;
const OP_OR: u8 = 3;
const OP_XOR: u8 = 4;
const OP_NAND: u8 = 5;
const OP_NOR: u8 = 6;
const OP_XNOR: u8 = 7;
const OP_MUX: u8 = 8;

/// One combinational evaluation step: `values[out] = kind(a, b, c)`.
/// Unused operand slots point at net 0 and are never read by the opcode.
#[derive(Clone, Copy, Debug)]
struct Op {
    kind: u8,
    arity: u8,
    out: u32,
    a: u32,
    b: u32,
    c: u32,
}

/// A [`Module`] compiled into the flat program [`PackedSimulator`]
/// executes. Compile once, then share across any number of simulators of
/// any lane width (e.g. one per worker thread).
#[derive(Clone, Debug)]
pub struct PackedNetlist {
    n_nets: usize,
    /// Combinational cells in topological order.
    ops: Vec<Op>,
    /// Cell index → position in `ops`, `u32::MAX` for non-combinational.
    op_pos: Vec<u32>,
    /// Input port nets, in port order.
    inputs: Vec<u32>,
    /// `(net, broadcast value)` per constant cell.
    consts: Vec<(u32, u64)>,
    /// Register output nets, in `Module::registers()` order.
    reg_nets: Vec<u32>,
    /// Register data-input nets, parallel to `reg_nets`.
    reg_d: Vec<u32>,
    /// Broadcast reset value per register.
    reg_init: Vec<u64>,
    /// Cell index → register position, `u32::MAX` for non-registers.
    reg_pos: Vec<u32>,
    /// Output port nets, in port order.
    outputs: Vec<u32>,
}

impl PackedNetlist {
    /// Compiles `module` into the packed form.
    pub fn compile(module: &Module) -> Self {
        let n = module.len();
        let mut ops = Vec::with_capacity(module.topo_order().len());
        let mut op_pos = vec![u32::MAX; n];
        for &c in module.topo_order() {
            let cell = module.cell(c);
            let kind = match cell.kind {
                CellKind::Buf => OP_BUF,
                CellKind::Not => OP_NOT,
                CellKind::And => OP_AND,
                CellKind::Or => OP_OR,
                CellKind::Xor => OP_XOR,
                CellKind::Nand => OP_NAND,
                CellKind::Nor => OP_NOR,
                CellKind::Xnor => OP_XNOR,
                CellKind::Mux => OP_MUX,
                CellKind::Input | CellKind::Const(_) | CellKind::Dff { .. } => {
                    unreachable!("topo order contains only combinational cells")
                }
            };
            let pin = |i: usize| cell.pins.get(i).map_or(0, |p| p.0);
            op_pos[c.index()] = ops.len() as u32;
            ops.push(Op {
                kind,
                arity: cell.pins.len() as u8,
                out: c.0,
                a: pin(0),
                b: pin(1),
                c: pin(2),
            });
        }
        let mut consts = Vec::new();
        for (i, cell) in module.cells().iter().enumerate() {
            if let CellKind::Const(v) = cell.kind {
                consts.push((i as u32, if v { !0 } else { 0 }));
            }
        }
        let mut reg_nets = Vec::with_capacity(module.registers().len());
        let mut reg_d = Vec::with_capacity(module.registers().len());
        let mut reg_init = Vec::with_capacity(module.registers().len());
        let mut reg_pos = vec![u32::MAX; n];
        for (pos, &r) in module.registers().iter().enumerate() {
            let cell = module.cell(r);
            let init = match cell.kind {
                CellKind::Dff { init } => init,
                _ => unreachable!("registers() yields only flip-flops"),
            };
            reg_pos[r.index()] = pos as u32;
            reg_nets.push(r.0);
            reg_d.push(cell.pins[0].0);
            reg_init.push(if init { !0 } else { 0 });
        }
        PackedNetlist {
            n_nets: n,
            ops,
            op_pos,
            inputs: module.inputs().iter().map(|n| n.0).collect(),
            consts,
            reg_nets,
            reg_d,
            reg_init,
            reg_pos,
            outputs: module.outputs().iter().map(|&(_, n)| n.0).collect(),
        }
    }

    /// Number of nets (= cells) in the compiled module.
    pub fn len(&self) -> usize {
        self.n_nets
    }

    /// Returns `true` for an empty module.
    pub fn is_empty(&self) -> bool {
        self.n_nets == 0
    }

    /// Number of input ports.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    pub fn register_count(&self) -> usize {
        self.reg_nets.len()
    }
}

/// The lane-selection mask with exactly lane `lane` set: word `lane / 64`,
/// bit `lane % 64`. The building block for arming per-lane faults on a
/// [`PackedSimulator`]`<W>`.
///
/// # Panics
///
/// Panics if `lane >= 64 · W`.
#[inline]
pub fn lane_mask<const W: usize>(lane: usize) -> [u64; W] {
    assert!(lane < LANES * W, "lane {lane} out of range for {W} words");
    let mut mask = [0u64; W];
    mask[lane / LANES] = 1u64 << (lane % LANES);
    mask
}

/// Spreads one lane of a packed wave vector into Booleans: `out[i]` = bit
/// `lane % 64` of word `lane / 64` of `words[i]`. The scratch vector is
/// cleared first, so it can be reused across extractions without
/// reallocating.
///
/// # Panics
///
/// Panics if `lane >= 64 · W`.
pub fn extract_lane<const W: usize>(words: &[[u64; W]], lane: usize, out: &mut Vec<bool>) {
    assert!(lane < LANES * W, "lane {lane} out of range for {W} words");
    let (word, bit) = (lane / LANES, lane % LANES);
    out.clear();
    out.extend(words.iter().map(|w| (w[word] >> bit) & 1 == 1));
}

/// Broadcasts one word value to every word of a wave.
#[inline]
fn splat<const W: usize>(v: u64) -> [u64; W] {
    [v; W]
}

/// Stuck/flip masks for one faulted cell input pin.
#[derive(Clone, Copy, Debug)]
struct PinMasks<const W: usize> {
    keep: [u64; W],
    force: [u64; W],
    flip: [u64; W],
}

impl<const W: usize> Default for PinMasks<W> {
    fn default() -> Self {
        PinMasks {
            keep: [!0; W],
            force: [0; W],
            flip: [0; W],
        }
    }
}

impl<const W: usize> PinMasks<W> {
    #[inline]
    fn apply(&self, v: [u64; W]) -> [u64; W] {
        let mut out = [0u64; W];
        for k in 0..W {
            out[k] = ((v[k] & self.keep[k]) | self.force[k]) ^ self.flip[k];
        }
        out
    }

    fn stuck(&mut self, value: bool, lanes: [u64; W]) {
        for (k, &l) in lanes.iter().enumerate() {
            self.keep[k] &= !l;
            self.force[k] = (self.force[k] & !l) | if value { l } else { 0 };
        }
    }

    fn flip(&mut self, lanes: [u64; W]) {
        for (k, &l) in lanes.iter().enumerate() {
            self.flip[k] |= l;
        }
    }
}

/// Multi-word wave simulator over a [`PackedNetlist`]: `64 · W`
/// independent lanes per pass.
///
/// Each lane is one independent simulation of the same module: lanes share
/// the clock and the netlist but have their own register state, inputs and
/// faults. Net values are `[u64; W]` waves; lane `l` lives in bit `l % 64`
/// of word `l / 64` (see [`lane_mask`] / [`extract_lane`]). All
/// fault-arming methods take a `lanes` wave mask selecting which lanes the
/// fault applies to ([`lane_mask`]`(l)` for one lane, `[!0; W]` for all).
///
/// `W` must be in `{1, 2, 4, 8}` — widths are compile-time so the
/// per-word loops unroll; see [`MAX_LANE_WORDS`] for why tunable-width
/// code stops at four words and [`SIMD_LANE_WORDS`] for the fixed
/// eight-word SIMD wave.
///
/// The two-phase cycle semantics match the scalar
/// [`Simulator`](crate::Simulator) exactly: inputs applied, combinational
/// settle in topological order, outputs sampled, registers committed.
/// Stuck-at faults are applied before transient flips on every net and pin,
/// as in the scalar engine.
///
/// # Example
///
/// A 128-lane (`W = 2`) round trip: preload per-lane register state, step
/// once, and read one lane back out of the wave — here lane 100, which
/// lives in word 1:
///
/// ```
/// use scfi_netlist::{extract_lane, lane_mask, ModuleBuilder, PackedNetlist, PackedSimulator};
///
/// let mut b = ModuleBuilder::new("toggle");
/// let en = b.input("en");
/// let q = b.dff_uninit(false);
/// let next = b.xor2(q, en);
/// b.set_dff_input(q, next);
/// b.output("q", q);
/// let module = b.finish().expect("valid netlist");
///
/// let compiled = PackedNetlist::compile(&module);
/// let mut sim = PackedSimulator::<2>::new(&compiled);
/// sim.set_register_words(&[lane_mask(100)]); // q starts high in lane 100 only
/// let mut out = Vec::new();
/// sim.step_into(&[[!0u64; 2]], &mut out); // enable high everywhere
/// let mut bits = Vec::new();
/// extract_lane(&out, 100, &mut bits);
/// assert_eq!(bits, [true]); // lane 100 sampled its preloaded high...
/// extract_lane(sim.register_words(), 100, &mut bits);
/// assert_eq!(bits, [false]); // ...then toggled low at the clock edge
/// extract_lane(sim.register_words(), 0, &mut bits);
/// assert_eq!(bits, [true]); // lane 0 toggled the other way
/// ```
#[derive(Debug)]
pub struct PackedSimulator<'p, const W: usize = 1> {
    net: &'p PackedNetlist,
    /// Per-net lane waves, rewritten every cycle.
    values: Vec<[u64; W]>,
    /// Stored state per register, parallel to `PackedNetlist::reg_nets`.
    reg_state: Vec<[u64; W]>,
    /// Per-net stuck-at keep mask (`[!0; W]` = no stuck lanes).
    keep: Vec<[u64; W]>,
    /// Per-net stuck-at force mask.
    force: Vec<[u64; W]>,
    /// Per-net transient flip mask.
    flip: Vec<[u64; W]>,
    /// Nets whose masks deviate from the defaults — lets
    /// [`PackedSimulator::clear_faults`] reset in O(faults), not O(nets).
    dirty: Vec<u32>,
    /// Faulted combinational input pins, sorted by op position before
    /// evaluation and consumed by a cursor during the sweep.
    op_faults: Vec<(u32, u8, PinMasks<W>)>,
    op_faults_sorted: bool,
    /// Faulted register data pins, keyed by register position.
    reg_faults: Vec<(u32, PinMasks<W>)>,
    cycle: u64,
}

impl<'p, const W: usize> PackedSimulator<'p, W> {
    /// Total independent lanes per pass: `64 · W`.
    pub const LANES: usize = LANES * W;

    /// Creates a simulator with every lane's registers at their reset
    /// values.
    pub fn new(net: &'p PackedNetlist) -> Self {
        assert!(
            matches!(W, 1 | 2 | 4 | 8),
            "lane-word count {W} outside the supported {{1, 2, 4, 8}}"
        );
        PackedSimulator {
            net,
            values: vec![[0; W]; net.n_nets],
            reg_state: net.reg_init.iter().map(|&v| splat(v)).collect(),
            keep: vec![[!0; W]; net.n_nets],
            force: vec![[0; W]; net.n_nets],
            flip: vec![[0; W]; net.n_nets],
            dirty: Vec::new(),
            op_faults: Vec::new(),
            op_faults_sorted: true,
            reg_faults: Vec::new(),
            cycle: 0,
        }
    }

    /// The compiled netlist under simulation.
    pub fn netlist(&self) -> &'p PackedNetlist {
        self.net
    }

    /// Completed clock cycles since construction or the last reset.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns every lane's registers to their reset values and restarts
    /// the cycle counter. Fault state is preserved (clear it separately
    /// with [`PackedSimulator::clear_faults`]).
    pub fn reset(&mut self) {
        for (w, &init) in self.reg_state.iter_mut().zip(&self.net.reg_init) {
            *w = splat(init);
        }
        self.cycle = 0;
    }

    /// Stored register waves, in `Module::registers()` order; lane `l` of
    /// wave `i` is lane `l`'s register `i`.
    pub fn register_words(&self) -> &[[u64; W]] {
        &self.reg_state
    }

    /// Overwrites all register state with per-lane waves and restarts the
    /// cycle counter.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_register_words(&mut self, words: &[[u64; W]]) {
        assert_eq!(words.len(), self.reg_state.len(), "register count mismatch");
        self.reg_state.copy_from_slice(words);
        self.cycle = 0;
    }

    /// Broadcasts one scalar register state to every lane.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_register_values(&mut self, values: &[bool]) {
        assert_eq!(
            values.len(),
            self.reg_state.len(),
            "register count mismatch"
        );
        for (w, &v) in self.reg_state.iter_mut().zip(values) {
            *w = splat(if v { !0 } else { 0 });
        }
        self.cycle = 0;
    }

    /// Flips one stored register bit in the selected lanes — the packed
    /// form of [`Simulator::flip_register`](crate::Simulator::flip_register).
    /// Flipping the same lanes twice cancels, exactly as two scalar flips
    /// would.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a flip-flop of this module.
    pub fn flip_register(&mut self, reg: CellId, lanes: [u64; W]) {
        let pos = self.net.reg_pos[reg.index()];
        assert!(pos != u32::MAX, "{reg:?} is not a register");
        let w = &mut self.reg_state[pos as usize];
        for k in 0..W {
            w[k] ^= lanes[k];
        }
    }

    /// Reads the settled lane wave of an arbitrary net (valid after a
    /// step or an explicit [`PackedSimulator::eval_comb`]).
    pub fn peek(&self, net: NetId) -> [u64; W] {
        self.values[net.index()]
    }

    // ----- fault plumbing ------------------------------------------------

    fn touch(&mut self, net: u32) {
        let n = net as usize;
        if self.keep[n] == [!0; W] && self.force[n] == [0; W] && self.flip[n] == [0; W] {
            self.dirty.push(net);
        }
    }

    /// Arms a transient bit-flip on a net in the selected lanes; active
    /// every cycle until cleared. Re-arming the same lanes is idempotent,
    /// like the scalar engine's fault set.
    pub fn set_net_flip(&mut self, net: NetId, lanes: [u64; W]) {
        self.touch(net.0);
        let f = &mut self.flip[net.index()];
        for k in 0..W {
            f[k] |= lanes[k];
        }
    }

    /// Forces a net to a constant value in the selected lanes (stuck-at
    /// fault). A later stuck on overlapping lanes wins, like the scalar
    /// engine's map insert.
    pub fn set_net_stuck(&mut self, net: NetId, value: bool, lanes: [u64; W]) {
        self.touch(net.0);
        let n = net.index();
        for (k, &l) in lanes.iter().enumerate() {
            self.keep[n][k] &= !l;
            self.force[n][k] = (self.force[n][k] & !l) | if value { l } else { 0 };
        }
    }

    /// Finds or creates the pin-mask entry backing `(cell, pin)`, or
    /// `None` when the pin does not exist on this cell — in which case the
    /// fault has no observable effect, matching the scalar engine.
    fn pin_entry(&mut self, cell: CellId, pin: usize) -> Option<&mut PinMasks<W>> {
        let reg = self.net.reg_pos[cell.index()];
        if reg != u32::MAX {
            if pin != 0 {
                return None; // flip-flops read only pin 0
            }
            if let Some(i) = self.reg_faults.iter().position(|&(r, _)| r == reg) {
                return Some(&mut self.reg_faults[i].1);
            }
            self.reg_faults.push((reg, PinMasks::default()));
            return Some(&mut self.reg_faults.last_mut().expect("just pushed").1);
        }
        let pos = self.net.op_pos[cell.index()];
        if pos == u32::MAX || pin >= self.net.ops[pos as usize].arity as usize {
            return None; // inputs/constants have no pins; out-of-range pin
        }
        let pin = pin as u8;
        if let Some(i) = self
            .op_faults
            .iter()
            .position(|&(p, q, _)| p == pos && q == pin)
        {
            return Some(&mut self.op_faults[i].2);
        }
        self.op_faults.push((pos, pin, PinMasks::default()));
        self.op_faults_sorted = false;
        Some(&mut self.op_faults.last_mut().expect("just pushed").2)
    }

    /// Arms a transient bit-flip on one input pin of one cell in the
    /// selected lanes.
    pub fn set_pin_flip(&mut self, cell: CellId, pin: usize, lanes: [u64; W]) {
        if let Some(e) = self.pin_entry(cell, pin) {
            e.flip(lanes);
        }
    }

    /// Forces one input pin of one cell to a constant value in the
    /// selected lanes.
    pub fn set_pin_stuck(&mut self, cell: CellId, pin: usize, value: bool, lanes: [u64; W]) {
        if let Some(e) = self.pin_entry(cell, pin) {
            e.stuck(value, lanes);
        }
    }

    /// Removes all armed faults in every lane, in time proportional to the
    /// number of faulted sites (not the netlist size) — waves of a
    /// campaign re-arm from a clean slate without paying O(nets).
    pub fn clear_faults(&mut self) {
        for &n in &self.dirty {
            let n = n as usize;
            self.keep[n] = [!0; W];
            self.force[n] = [0; W];
            self.flip[n] = [0; W];
        }
        self.dirty.clear();
        self.op_faults.clear();
        self.op_faults_sorted = true;
        self.reg_faults.clear();
    }

    /// Returns `true` if any fault is armed in any lane.
    pub fn has_faults(&self) -> bool {
        !(self.dirty.is_empty() && self.op_faults.is_empty() && self.reg_faults.is_empty())
    }

    // ----- evaluation ----------------------------------------------------

    #[inline]
    fn apply_net(&self, net: usize, raw: [u64; W]) -> [u64; W] {
        let (keep, force, flip) = (&self.keep[net], &self.force[net], &self.flip[net]);
        let mut out = [0u64; W];
        for k in 0..W {
            out[k] = ((raw[k] & keep[k]) | force[k]) ^ flip[k];
        }
        out
    }

    /// Evaluates the combinational network for the current cycle without
    /// committing registers. `inputs[i]` carries the lane wave of input
    /// port `i`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the module's input count.
    pub fn eval_comb(&mut self, inputs: &[[u64; W]]) {
        assert_eq!(
            inputs.len(),
            self.net.inputs.len(),
            "input count mismatch: got {}, module has {}",
            inputs.len(),
            self.net.inputs.len()
        );
        if !self.op_faults_sorted {
            self.op_faults.sort_by_key(|&(pos, pin, _)| (pos, pin));
            self.op_faults_sorted = true;
        }
        // Phase 0: source nets (inputs, constants, register outputs).
        for (i, &w) in inputs.iter().enumerate() {
            let n = self.net.inputs[i] as usize;
            self.values[n] = self.apply_net(n, w);
        }
        for &(n, w) in &self.net.consts {
            let n = n as usize;
            self.values[n] = self.apply_net(n, splat(w));
        }
        for (ri, &n) in self.net.reg_nets.iter().enumerate() {
            let n = n as usize;
            self.values[n] = self.apply_net(n, self.reg_state[ri]);
        }
        // Phase 1: combinational settle. One bitwise op per gate and word,
        // with the sparse pin-fault list consumed by a cursor as positions
        // pass. The `0..W` loops unroll (W is a compile-time constant).
        let mut cursor = 0usize;
        for (i, op) in self.net.ops.iter().enumerate() {
            let mut a = self.values[op.a as usize];
            let mut b = self.values[op.b as usize];
            let mut c = self.values[op.c as usize];
            while cursor < self.op_faults.len() && self.op_faults[cursor].0 == i as u32 {
                let (_, pin, masks) = self.op_faults[cursor];
                match pin {
                    0 => a = masks.apply(a),
                    1 => b = masks.apply(b),
                    _ => c = masks.apply(c),
                }
                cursor += 1;
            }
            // `op.kind` is loop-invariant, so the unrolled per-word loop
            // keeps a single opcode dispatch per gate.
            let mut raw = [0u64; W];
            for k in 0..W {
                raw[k] = match op.kind {
                    OP_BUF => a[k],
                    OP_NOT => !a[k],
                    OP_AND => a[k] & b[k],
                    OP_OR => a[k] | b[k],
                    OP_XOR => a[k] ^ b[k],
                    OP_NAND => !(a[k] & b[k]),
                    OP_NOR => !(a[k] | b[k]),
                    OP_XNOR => !(a[k] ^ b[k]),
                    _ => (a[k] & c[k]) | (!a[k] & b[k]), // mux: a = sel, b = on_false, c = on_true
                };
            }
            let n = op.out as usize;
            self.values[n] = self.apply_net(n, raw);
        }
    }

    /// Baseline-pruned combinational settle: like
    /// [`PackedSimulator::eval_comb`], but skips every op whose inputs
    /// hold the fault-free baseline in all *live* lanes — the incremental
    /// re-simulation of fault campaigns, the concrete twin of the symbolic
    /// engine's cone pruning.
    ///
    /// `base[n]` is the fault-free Boolean of net `n` for this cycle (the
    /// same in every lane — a scalar reference trace). `live` masks the
    /// lanes whose values matter; `activity` is caller-owned scratch,
    /// resized and refilled here (one flag per net: does any live lane
    /// differ from the baseline?).
    ///
    /// Activity is seeded at the sources (inputs and registers diverging
    /// from `base` in a live lane) and propagated through the topological
    /// sweep; an op with no active input writes the baseline splat instead
    /// of computing, and a computed op that *reconverges* with the
    /// baseline (XOR cancellation, a masking AND/OR) cuts its cone right
    /// there. Live lanes therefore read exactly the values
    /// [`PackedSimulator::eval_comb`] would produce; dead lanes hold the
    /// baseline, which campaign executors never read.
    ///
    /// # Panics
    ///
    /// Panics if any fault is armed (pruning reasons about the fault-free
    /// dataflow only — callers gate on [`PackedSimulator::has_faults`];
    /// note that register-bit flips mutate stored state rather than arming
    /// a fault, so flip-seeded divergence is handled by the register
    /// seeds), if `inputs` does not match the module's input count, or if
    /// `base` does not cover every net.
    pub fn eval_comb_pruned(
        &mut self,
        inputs: &[[u64; W]],
        base: &[bool],
        live: [u64; W],
        activity: &mut Vec<bool>,
    ) {
        assert_eq!(
            inputs.len(),
            self.net.inputs.len(),
            "input count mismatch: got {}, module has {}",
            inputs.len(),
            self.net.inputs.len()
        );
        assert_eq!(base.len(), self.net.n_nets, "baseline net-count mismatch");
        assert!(
            !self.has_faults(),
            "pruned evaluation requires a fault-free mask state"
        );
        activity.clear();
        activity.resize(self.net.n_nets, false);
        let base_word = |b: bool| if b { !0u64 } else { 0u64 };
        let diverges = |w: &[u64; W], bw: u64| {
            let mut diff = 0u64;
            for k in 0..W {
                diff |= (w[k] ^ bw) & live[k];
            }
            diff != 0
        };
        // Phase 0: sources. Constants always equal the baseline; inputs
        // and registers seed activity wherever a live lane diverges.
        for (i, &w) in inputs.iter().enumerate() {
            let n = self.net.inputs[i] as usize;
            self.values[n] = w;
            activity[n] = diverges(&w, base_word(base[n]));
        }
        for &(n, w) in &self.net.consts {
            self.values[n as usize] = splat(w);
        }
        for (ri, &n) in self.net.reg_nets.iter().enumerate() {
            let n = n as usize;
            let w = self.reg_state[ri];
            self.values[n] = w;
            activity[n] = diverges(&w, base_word(base[n]));
        }
        // Phase 1: topological sweep over the activity frontier.
        for op in &self.net.ops {
            let act = match op.arity {
                1 => activity[op.a as usize],
                2 => activity[op.a as usize] | activity[op.b as usize],
                _ => activity[op.a as usize] | activity[op.b as usize] | activity[op.c as usize],
            };
            let n = op.out as usize;
            let bw = base_word(base[n]);
            if !act {
                self.values[n] = splat(bw);
                continue;
            }
            let a = self.values[op.a as usize];
            let b = self.values[op.b as usize];
            let c = self.values[op.c as usize];
            let mut raw = [0u64; W];
            for k in 0..W {
                raw[k] = match op.kind {
                    OP_BUF => a[k],
                    OP_NOT => !a[k],
                    OP_AND => a[k] & b[k],
                    OP_OR => a[k] | b[k],
                    OP_XOR => a[k] ^ b[k],
                    OP_NAND => !(a[k] & b[k]),
                    OP_NOR => !(a[k] | b[k]),
                    OP_XNOR => !(a[k] ^ b[k]),
                    _ => (a[k] & c[k]) | (!a[k] & b[k]), // mux
                };
            }
            self.values[n] = raw;
            activity[n] = diverges(&raw, bw);
        }
    }

    /// Advances one clock cycle through the baseline-pruned settle of
    /// [`PackedSimulator::eval_comb_pruned`]: prune, sample outputs into
    /// `outputs`, commit registers.
    ///
    /// # Panics
    ///
    /// As [`PackedSimulator::eval_comb_pruned`].
    pub fn step_into_pruned(
        &mut self,
        inputs: &[[u64; W]],
        base: &[bool],
        live: [u64; W],
        activity: &mut Vec<bool>,
        outputs: &mut Vec<[u64; W]>,
    ) {
        self.eval_comb_pruned(inputs, base, live, activity);
        self.sample_outputs_into(outputs);
        self.commit_registers();
        self.cycle += 1;
    }

    /// Samples the output ports into `out` (cleared first); `out[i]`
    /// carries the lane wave of output port `i`.
    pub fn sample_outputs_into(&self, out: &mut Vec<[u64; W]>) {
        out.clear();
        out.extend(self.net.outputs.iter().map(|&n| self.values[n as usize]));
    }

    /// Commits every flip-flop's data input into its state, applying any
    /// armed register-pin faults.
    pub fn commit_registers(&mut self) {
        for (ri, &d) in self.net.reg_d.iter().enumerate() {
            self.reg_state[ri] = self.values[d as usize];
        }
        for &(reg, masks) in &self.reg_faults {
            let w = &mut self.reg_state[reg as usize];
            *w = masks.apply(*w);
        }
    }

    /// Advances one clock cycle: combinational settle, output sample into
    /// `outputs`, register commit — the packed equivalent of the scalar
    /// [`Simulator::step`](crate::Simulator::step).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the module's input count.
    pub fn step_into(&mut self, inputs: &[[u64; W]], outputs: &mut Vec<[u64; W]>) {
        self.eval_comb(inputs);
        self.sample_outputs_into(outputs);
        self.commit_registers();
        self.cycle += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModuleBuilder, Simulator};

    /// A 2-bit counter with an enable input.
    fn counter() -> Module {
        let mut b = ModuleBuilder::new("counter2");
        let en = b.input("en");
        let q0 = b.dff_uninit(false);
        let q1 = b.dff_uninit(false);
        let n0 = b.xor2(q0, en);
        let t = b.and2(q0, en);
        let n1 = b.xor2(q1, t);
        b.set_dff_input(q0, n0);
        b.set_dff_input(q1, n1);
        b.output("q0", q0);
        b.output("q1", q1);
        b.finish().unwrap()
    }

    #[test]
    fn lanes_run_independent_input_streams() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        let mut out = Vec::new();
        // Lane 0 counts every cycle, lane 1 never, lane 2 every other.
        let streams: [u64; 4] = [0b101, 0b001, 0b101, 0b001];
        let mut scalar: Vec<(Simulator<'_>, u64)> =
            (0..3).map(|l| (Simulator::new(&m), l)).collect();
        for &w in &streams {
            sim.step_into(&[[w]], &mut out);
            for (s, lane) in scalar.iter_mut() {
                let expect = s.step(&[(w >> *lane) & 1 == 1]);
                let got: Vec<bool> = out.iter().map(|&o| (o[0] >> *lane) & 1 == 1).collect();
                assert_eq!(got, expect, "lane {lane}");
            }
        }
        assert_eq!(sim.cycle(), 4);
    }

    #[test]
    fn lane_masked_faults_stay_in_their_lane() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        let q0 = m.registers()[0].net();
        sim.set_net_stuck(q0, true, lane_mask(5));
        let mut out = Vec::new();
        sim.step_into(&[[!0]], &mut out);
        // Lane 5 reads q0 stuck high immediately; lane 0 reads reset-low.
        assert_eq!((out[0][0] >> 5) & 1, 1);
        assert_eq!(out[0][0] & 1, 0);
        assert!(sim.has_faults());
        sim.clear_faults();
        assert!(!sim.has_faults());
    }

    #[test]
    fn register_flip_double_arm_cancels() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        sim.flip_register(m.registers()[1], [0b11]);
        sim.flip_register(m.registers()[1], [0b10]); // lane 1 flips back
        assert_eq!(sim.register_words()[1], [0b01]);
    }

    #[test]
    fn extract_lane_round_trips() {
        let words = vec![[0b10u64], [0b01u64]];
        let mut bits = Vec::new();
        extract_lane(&words, 0, &mut bits);
        assert_eq!(bits, vec![false, true]);
        extract_lane(&words, 1, &mut bits);
        assert_eq!(bits, vec![true, false]);
    }

    #[test]
    fn lane_mask_addresses_every_word() {
        assert_eq!(lane_mask::<1>(5), [1 << 5]);
        assert_eq!(lane_mask::<2>(64), [0, 1]);
        assert_eq!(lane_mask::<4>(200), [0, 0, 0, 1 << 8]);
        let words = vec![lane_mask::<4>(130)];
        let mut bits = Vec::new();
        extract_lane(&words, 130, &mut bits);
        assert_eq!(bits, vec![true]);
        extract_lane(&words, 131, &mut bits);
        assert_eq!(bits, vec![false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_mask_rejects_out_of_range_lanes() {
        let _ = lane_mask::<2>(128);
    }

    #[test]
    fn compile_exposes_shape() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        assert_eq!(compiled.len(), m.len());
        assert!(!compiled.is_empty());
        assert_eq!(compiled.input_count(), 1);
        assert_eq!(compiled.output_count(), 2);
        assert_eq!(compiled.register_count(), 2);
    }

    #[test]
    fn pin_fault_on_missing_pin_is_inert() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        let input_cell = m.inputs()[0].cell();
        sim.set_pin_flip(input_cell, 0, [!0]); // inputs have no pins
        sim.set_pin_stuck(m.registers()[0], 3, true, [!0]); // DFFs read pin 0 only
        let mut out = Vec::new();
        sim.step_into(&[[0]], &mut out);
        assert_eq!(out[0], [0]);
        assert_eq!(out[1], [0]);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn wrong_input_count_panics() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        sim.eval_comb(&[[0], [0]]);
    }

    /// Multi-cycle fault sequencing: arming a fault for exactly one middle
    /// cycle of a multi-step run (clear + re-arm between `step_into`
    /// calls, as the campaign wave executor does for transient windows)
    /// must match a scalar simulator driven with the same arm/clear
    /// schedule — including the state corruption persisting after the
    /// window closes.
    #[test]
    fn transient_window_re_arming_matches_scalar_across_cycles() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut packed = PackedSimulator::<1>::new(&compiled);
        let mut scalar = Simulator::new(&m);
        let q0 = m.registers()[0].net();
        let fault_cycle = 1;
        let mut out_words = Vec::new();
        let mut out_bits = Vec::new();
        for cycle in 0..4 {
            packed.clear_faults();
            scalar.clear_faults();
            if cycle == fault_cycle {
                packed.set_net_flip(q0, lane_mask(3)); // lane 3 only
                scalar.set_net_flip(q0);
            }
            packed.step_into(&[[!0u64]], &mut out_words);
            let expect = scalar.step(&[true]);
            // Faulted lane 3 tracks the faulted scalar run...
            extract_lane(&out_words, 3, &mut out_bits);
            assert_eq!(out_bits, expect, "cycle {cycle}, faulted lane");
            extract_lane(packed.register_words(), 3, &mut out_bits);
            assert_eq!(out_bits, scalar.register_values(), "cycle {cycle} state");
        }
        // ...while lane 0 never saw the glitch: it followed the fault-free
        // count and diverges from the corrupted trajectory.
        let mut clean = Simulator::new(&m);
        for _ in 0..4 {
            clean.step(&[true]);
        }
        extract_lane(packed.register_words(), 0, &mut out_bits);
        assert_eq!(out_bits, clean.register_values());
        assert_ne!(out_bits, scalar.register_values());
    }

    /// Lanes in different *words* of a W = 4 wave carry independent faults:
    /// a stuck-at in word 0 and a register flip in word 2 must not leak
    /// into each other's lanes, and both must match scalar oracles.
    #[test]
    fn faults_in_different_words_stay_independent() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<4>::new(&compiled);
        let q0 = m.registers()[0].net();
        let stuck_lane = 7; // word 0
        let flip_lane = 150; // word 2
        sim.set_net_stuck(q0, true, lane_mask(stuck_lane));
        sim.flip_register(m.registers()[1], lane_mask(flip_lane));

        let mut stuck_oracle = Simulator::new(&m);
        stuck_oracle.set_net_stuck(q0, true);
        let mut flip_oracle = Simulator::new(&m);
        flip_oracle.flip_register(m.registers()[1]);
        let mut clean_oracle = Simulator::new(&m);

        let mut out = Vec::new();
        let mut bits = Vec::new();
        for cycle in 0..4 {
            sim.step_into(&[[!0u64; 4]], &mut out);
            let expect_stuck = stuck_oracle.step(&[true]);
            let expect_flip = flip_oracle.step(&[true]);
            let expect_clean = clean_oracle.step(&[true]);
            extract_lane(&out, stuck_lane, &mut bits);
            assert_eq!(bits, expect_stuck, "cycle {cycle}: stuck lane");
            extract_lane(&out, flip_lane, &mut bits);
            assert_eq!(bits, expect_flip, "cycle {cycle}: flipped lane");
            // A fault-free lane in yet another word follows the clean run.
            extract_lane(&out, 70, &mut bits);
            assert_eq!(bits, expect_clean, "cycle {cycle}: clean lane");
        }
    }

    /// Per-cycle fault-free baseline of every net, as the campaign wave
    /// executor computes it: registers hold start-of-cycle state, then one
    /// combinational settle. Advances the reference one cycle.
    fn baseline_nets(reference: &mut Simulator<'_>, inputs: &[bool], n_nets: usize) -> Vec<bool> {
        reference.eval_comb(inputs);
        let base = (0..n_nets)
            .map(|n| reference.peek(crate::NetId(n as u32)))
            .collect();
        reference.commit_registers();
        base
    }

    /// The baseline-pruned settle must reproduce `eval_comb` bit-for-bit
    /// in every live lane: divergence seeded by a register-bit flip (state
    /// mutation, not an armed fault) and by an input lane straying from
    /// the reference stream both propagate through the activity frontier.
    #[test]
    fn pruned_step_matches_full_step_on_diverged_lanes() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut full = PackedSimulator::<2>::new(&compiled);
        let mut pruned = PackedSimulator::<2>::new(&compiled);
        // Lane 70 (word 1) starts from a flipped register bit; lane 5
        // (word 0) drives a diverging input stream on cycles 1 and 2.
        full.flip_register(m.registers()[1], lane_mask(70));
        pruned.flip_register(m.registers()[1], lane_mask(70));
        assert!(!pruned.has_faults(), "flips mutate state, not masks");

        let mut reference = Simulator::new(&m);
        let live = [!0u64; 2];
        let (mut out_full, mut out_pruned, mut activity) = (Vec::new(), Vec::new(), Vec::new());
        for cycle in 0..4 {
            let base = baseline_nets(&mut reference, &[true], compiled.len());
            let lane5 = lane_mask::<2>(5);
            let w0 = if cycle == 1 || cycle == 2 {
                !0 ^ lane5[0]
            } else {
                !0u64
            };
            let inputs = [[w0, !0u64]];
            full.step_into(&inputs, &mut out_full);
            pruned.step_into_pruned(&inputs, &base, live, &mut activity, &mut out_pruned);
            assert_eq!(out_full, out_pruned, "cycle {cycle}: outputs");
            assert_eq!(
                full.register_words(),
                pruned.register_words(),
                "cycle {cycle}: committed state"
            );
        }
    }

    /// Lanes outside `live` cannot wake the activity frontier: with the
    /// only divergence in a dead lane, the pruned settle reports zero
    /// activity and every live lane reads the baseline.
    #[test]
    fn pruned_eval_ignores_divergence_in_dead_lanes() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        sim.flip_register(m.registers()[0], lane_mask(9));
        let mut reference = Simulator::new(&m);
        let base = baseline_nets(&mut reference, &[true], compiled.len());
        let live = [!0u64 ^ lane_mask::<1>(9)[0]];
        let mut activity = Vec::new();
        sim.eval_comb_pruned(&[[!0u64]], &base, live, &mut activity);
        assert!(
            activity.iter().all(|&a| !a),
            "dead-lane divergence woke the frontier"
        );
        let mut out = Vec::new();
        sim.sample_outputs_into(&mut out);
        let expect = reference.sample_outputs();
        for (port, &word) in out.iter().enumerate() {
            let want = if expect[port] { live[0] } else { 0 };
            assert_eq!(
                word[0] & live[0],
                want,
                "output {port}: live lanes off baseline"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fault-free mask state")]
    fn pruned_eval_rejects_armed_faults() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<1>::new(&compiled);
        sim.set_net_flip(m.registers()[0].net(), lane_mask(0));
        let base = vec![false; compiled.len()];
        let mut activity = Vec::new();
        sim.eval_comb_pruned(&[[0]], &base, [!0], &mut activity);
    }

    /// The fixed eight-word SIMD wave is a first-class width: lanes in the
    /// first and last words track independent scalar oracles.
    #[test]
    fn w8_wave_matches_scalar_in_first_and_last_words() {
        let m = counter();
        let compiled = PackedNetlist::compile(&m);
        let mut sim = PackedSimulator::<SIMD_LANE_WORDS>::new(&compiled);
        let mut counting = Simulator::new(&m);
        let mut idle = Simulator::new(&m);
        let mut out = Vec::new();
        let mut bits = Vec::new();
        // Lane 3 counts every cycle; lane 500 (word 7) never does.
        let inputs = lane_mask::<SIMD_LANE_WORDS>(3);
        for cycle in 0..4 {
            sim.step_into(&[inputs], &mut out);
            let expect_counting = counting.step(&[true]);
            let expect_idle = idle.step(&[false]);
            extract_lane(&out, 3, &mut bits);
            assert_eq!(bits, expect_counting, "cycle {cycle}: lane 3");
            extract_lane(&out, 500, &mut bits);
            assert_eq!(bits, expect_idle, "cycle {cycle}: lane 500");
        }
    }
}
