//! Gate-level netlist IR with cycle-accurate simulation and fault hooks.
//!
//! This crate is the reproduction's stand-in for the Yosys RTLIL layer the
//! SCFI paper's pass operates on (§5). It provides:
//!
//! * [`Module`] — a flat gate-level netlist of 2-input gates, inverters,
//!   2:1 muxes, constants and D flip-flops, where every cell drives exactly
//!   one net ([`NetId`] ≡ [`CellId`]),
//! * [`ModuleBuilder`] — an ergonomic way to emit logic, with word-level
//!   helpers (XOR/AND reduction trees, comparators, one-hot mux arrays),
//! * [`Simulator`] — deterministic two-phase clocked evaluation
//!   (combinational settle, then register update) with the fault-injection
//!   hooks the SYNFI-style analysis needs: transient bit-flips and stuck-at
//!   faults on any net or any individual cell input pin, and direct register
//!   manipulation,
//! * [`PackedNetlist`] / [`PackedSimulator`]`<W>` — the word-level,
//!   bit-parallel campaign engine: the module compiled once into a
//!   levelized struct-of-arrays program, evaluated over `[u64; W]` net
//!   waves where each bit is an independent simulation lane (64, 128 or
//!   256 fault injections per gate operation for `W` ∈ {1, 2, 4}, faults
//!   as precompiled AND/OR/XOR masks),
//! * [`ModuleStats`] — cell histograms and logic depth,
//! * DOT and structural-Verilog export.
//!
//! # Example
//!
//! A toggle flip-flop with an enable input:
//!
//! ```
//! use scfi_netlist::{ModuleBuilder, Simulator};
//!
//! let mut b = ModuleBuilder::new("toggle");
//! let en = b.input("en");
//! let q = b.dff_uninit(false);
//! let next = b.xor2(q, en);
//! b.set_dff_input(q, next);
//! b.output("q", q);
//! let module = b.finish().expect("valid netlist");
//!
//! let mut sim = Simulator::new(&module);
//! assert_eq!(sim.step(&[true]), vec![false]); // output before the edge
//! assert_eq!(sim.step(&[true]), vec![true]);
//! assert_eq!(sim.step(&[false]), vec![false]); // toggled again, then holds
//! ```

#![deny(missing_docs)]

mod builder;
mod export;
mod ir;
mod packed;
mod sim;
mod stats;
mod vcd;

pub use builder::ModuleBuilder;
pub use ir::{Cell, CellId, CellKind, Module, NetId, ValidateError};
pub use packed::{
    extract_lane, lane_mask, PackedNetlist, PackedSimulator, LANES, MAX_LANE_WORDS, SIMD_LANE_WORDS,
};
pub use sim::Simulator;
pub use stats::ModuleStats;
pub use vcd::VcdRecorder;
