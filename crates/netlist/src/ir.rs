//! Core netlist types: cells, nets, modules.

use std::fmt;

/// Identifies a net — the single output of a cell. `NetId` and [`CellId`]
/// share the same index space: net `i` is driven by cell `i`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifies a cell in a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

impl NetId {
    /// The driving cell of this net.
    pub fn cell(self) -> CellId {
        CellId(self.0)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl CellId {
    /// The net driven by this cell.
    pub fn net(self) -> NetId {
        NetId(self.0)
    }

    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The logic function of a cell.
///
/// The netlist is deliberately restricted to the primitives a standard-cell
/// mapper handles directly: 2-input gates, an inverter, a buffer, a 2:1 mux
/// and a D flip-flop. Wider operations are built as trees by
/// [`ModuleBuilder`](crate::ModuleBuilder).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CellKind {
    /// Module input port (no operands). Port order follows creation order.
    Input,
    /// Constant driver.
    Const(bool),
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// `y = a & b`.
    And,
    /// `y = a | b`.
    Or,
    /// `y = a ^ b`.
    Xor,
    /// `y = !(a & b)`.
    Nand,
    /// `y = !(a | b)`.
    Nor,
    /// `y = !(a ^ b)`.
    Xnor,
    /// 2:1 multiplexer: `y = sel ? b : a` with pins `[sel, a, b]`.
    Mux,
    /// D flip-flop with reset/initial value `init`; pin `[d]`.
    ///
    /// The simulator applies `init` at reset and updates `q` from `d` on
    /// every clock step.
    Dff {
        /// Value after reset.
        init: bool,
    },
}

impl CellKind {
    /// The number of input pins this kind requires.
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Input | CellKind::Const(_) => 0,
            CellKind::Buf | CellKind::Not | CellKind::Dff { .. } => 1,
            CellKind::And
            | CellKind::Or
            | CellKind::Xor
            | CellKind::Nand
            | CellKind::Nor
            | CellKind::Xnor => 2,
            CellKind::Mux => 3,
        }
    }

    /// Returns `true` for sequential (state-holding) cells.
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellKind::Dff { .. })
    }

    /// Short lowercase mnemonic, e.g. `"xor"`.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            CellKind::Input => "input",
            CellKind::Const(false) => "const0",
            CellKind::Const(true) => "const1",
            CellKind::Buf => "buf",
            CellKind::Not => "not",
            CellKind::And => "and",
            CellKind::Or => "or",
            CellKind::Xor => "xor",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Xnor => "xnor",
            CellKind::Mux => "mux",
            CellKind::Dff { .. } => "dff",
        }
    }
}

/// One cell instance: a logic function plus its input nets.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Logic function.
    pub kind: CellKind,
    /// Input nets, in pin order (see [`CellKind`] for pin meanings).
    pub pins: Vec<NetId>,
    /// Optional debug name (ports always carry one).
    pub name: Option<String>,
}

/// Errors produced by [`Module::validate`] / `ModuleBuilder::finish`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// A cell has the wrong number of input pins.
    PinCount {
        /// Offending cell.
        cell: u32,
        /// Pins required by the cell kind.
        expected: usize,
        /// Pins actually connected.
        found: usize,
    },
    /// A pin references a net that does not exist.
    DanglingPin {
        /// Offending cell.
        cell: u32,
        /// Offending net index.
        net: u32,
    },
    /// The combinational logic contains a cycle not broken by a flip-flop.
    CombinationalLoop {
        /// A cell participating in the cycle.
        cell: u32,
    },
    /// A flip-flop was created but its data input was never connected.
    UnconnectedDff {
        /// Offending cell.
        cell: u32,
    },
    /// An output port references a net that does not exist.
    DanglingOutput {
        /// Port name.
        port: String,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::PinCount {
                cell,
                expected,
                found,
            } => write!(f, "cell c{cell} has {found} pins, expected {expected}"),
            ValidateError::DanglingPin { cell, net } => {
                write!(f, "cell c{cell} references nonexistent net n{net}")
            }
            ValidateError::CombinationalLoop { cell } => {
                write!(f, "combinational loop through cell c{cell}")
            }
            ValidateError::UnconnectedDff { cell } => {
                write!(f, "flip-flop c{cell} has no data input connected")
            }
            ValidateError::DanglingOutput { port } => {
                write!(f, "output port {port} references a nonexistent net")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// A flat gate-level netlist.
///
/// Construct modules with [`ModuleBuilder`](crate::ModuleBuilder); a
/// finished module is immutable and validated (pin arities, no dangling
/// nets, no combinational loops, all flip-flops connected).
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) cells: Vec<Cell>,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) outputs: Vec<(String, NetId)>,
    /// Combinational evaluation order (excludes inputs/consts/DFFs).
    pub(crate) topo: Vec<CellId>,
    /// All flip-flop cells.
    pub(crate) registers: Vec<CellId>,
    /// Cell index → position in `registers`, `u32::MAX` for non-registers.
    /// Precomputed once so simulators never need a per-instance hash map.
    pub(crate) reg_pos: Vec<u32>,
}

impl Module {
    /// Module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells, indexed by [`CellId`].
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// One cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Number of cells (= number of nets).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` for an empty module.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Input port nets, in port order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output ports `(name, net)`, in port order.
    pub fn outputs(&self) -> &[(String, NetId)] {
        &self.outputs
    }

    /// Flip-flop cells, in creation order.
    pub fn registers(&self) -> &[CellId] {
        &self.registers
    }

    /// Position of `cell` in [`Module::registers`], or `None` if it is not
    /// a flip-flop of this module.
    pub fn register_position(&self, cell: CellId) -> Option<usize> {
        self.reg_pos
            .get(cell.index())
            .and_then(|&p| (p != u32::MAX).then_some(p as usize))
    }

    /// Combinational cells in a valid evaluation order.
    pub fn topo_order(&self) -> &[CellId] {
        &self.topo
    }

    /// Looks up an output net by port name.
    pub fn output_net(&self, port: &str) -> Option<NetId> {
        self.outputs
            .iter()
            .find(|(n, _)| n == port)
            .map(|&(_, net)| net)
    }

    /// Re-checks the structural invariants. A module built through
    /// [`ModuleBuilder::finish`](crate::ModuleBuilder::finish) always
    /// passes.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ValidateError> {
        validate_cells(&self.cells, &self.outputs).map(|_| ())
    }
}

/// Validates cell structure and computes the combinational topo order.
pub(crate) fn validate_cells(
    cells: &[Cell],
    outputs: &[(String, NetId)],
) -> Result<Vec<CellId>, ValidateError> {
    let n = cells.len();
    for (i, cell) in cells.iter().enumerate() {
        let expected = cell.kind.arity();
        if cell.pins.len() != expected {
            if cell.kind.is_sequential() && cell.pins.is_empty() {
                return Err(ValidateError::UnconnectedDff { cell: i as u32 });
            }
            return Err(ValidateError::PinCount {
                cell: i as u32,
                expected,
                found: cell.pins.len(),
            });
        }
        for pin in &cell.pins {
            if pin.index() >= n {
                return Err(ValidateError::DanglingPin {
                    cell: i as u32,
                    net: pin.0,
                });
            }
        }
    }
    for (port, net) in outputs {
        if net.index() >= n {
            return Err(ValidateError::DanglingOutput { port: port.clone() });
        }
    }
    // Kahn topological sort over combinational cells; DFF outputs, inputs
    // and constants are sources.
    let is_comb = |c: &Cell| {
        !matches!(c.kind, CellKind::Input | CellKind::Const(_)) && !c.kind.is_sequential()
    };
    let mut indegree = vec![0usize; n];
    let mut fanout: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, cell) in cells.iter().enumerate() {
        if !is_comb(cell) {
            continue;
        }
        for pin in &cell.pins {
            let src = pin.index();
            if is_comb(&cells[src]) {
                indegree[i] += 1;
                fanout[src].push(i as u32);
            }
        }
    }
    let mut queue: Vec<u32> = (0..n)
        .filter(|&i| is_comb(&cells[i]) && indegree[i] == 0)
        .map(|i| i as u32)
        .collect();
    let mut topo = Vec::new();
    let mut head = 0usize;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        topo.push(CellId(c));
        for &next in &fanout[c as usize] {
            indegree[next as usize] -= 1;
            if indegree[next as usize] == 0 {
                queue.push(next);
            }
        }
    }
    let comb_total = cells.iter().filter(|c| is_comb(c)).count();
    if topo.len() != comb_total {
        // Find a cell stuck in the cycle for the error message.
        let stuck = (0..n)
            .find(|&i| is_comb(&cells[i]) && indegree[i] > 0)
            .unwrap_or(0);
        return Err(ValidateError::CombinationalLoop { cell: stuck as u32 });
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    #[test]
    fn arity_table() {
        assert_eq!(CellKind::Input.arity(), 0);
        assert_eq!(CellKind::Not.arity(), 1);
        assert_eq!(CellKind::Xor.arity(), 2);
        assert_eq!(CellKind::Mux.arity(), 3);
        assert_eq!(CellKind::Dff { init: false }.arity(), 1);
        assert!(CellKind::Dff { init: true }.is_sequential());
        assert!(!CellKind::And.is_sequential());
    }

    #[test]
    fn net_cell_id_round_trip() {
        let n = NetId(7);
        assert_eq!(n.cell().net(), n);
        assert_eq!(format!("{n:?}"), "n7");
        assert_eq!(format!("{:?}", n.cell()), "c7");
    }

    #[test]
    fn module_accessors() {
        let mut b = ModuleBuilder::new("m");
        let a = b.input("a");
        let x = b.input("x");
        let y = b.and2(a, x);
        b.output("y", y);
        let m = b.finish().unwrap();
        assert_eq!(m.name(), "m");
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.output_net("y"), Some(y));
        assert_eq!(m.output_net("nope"), None);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert!(m.validate().is_ok());
        assert_eq!(m.cell(y.cell()).kind, CellKind::And);
    }

    #[test]
    fn comb_loop_detected() {
        // Hand-build an invalid module: a = a & b (self loop).
        let cells = vec![
            Cell {
                kind: CellKind::Input,
                pins: vec![],
                name: Some("b".into()),
            },
            Cell {
                kind: CellKind::And,
                pins: vec![NetId(1), NetId(0)],
                name: None,
            },
        ];
        let err = validate_cells(&cells, &[]).unwrap_err();
        assert!(matches!(err, ValidateError::CombinationalLoop { .. }));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut b = ModuleBuilder::new("counter");
        let q = b.dff_uninit(false);
        let nq = b.not(q);
        b.set_dff_input(q, nq);
        b.output("q", q);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn dangling_pin_detected() {
        let cells = vec![Cell {
            kind: CellKind::Not,
            pins: vec![NetId(9)],
            name: None,
        }];
        let err = validate_cells(&cells, &[]).unwrap_err();
        assert!(matches!(err, ValidateError::DanglingPin { net: 9, .. }));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ValidateError::CombinationalLoop { cell: 3 };
        assert!(e.to_string().contains("c3"));
        let e = ValidateError::UnconnectedDff { cell: 1 };
        assert!(e.to_string().contains("flip-flop"));
    }
}
