//! Cycle-accurate two-phase simulation with fault hooks.

use std::collections::{HashMap, HashSet};

use crate::ir::{CellId, CellKind, Module, NetId};

/// Deterministic clocked simulator for a [`Module`].
///
/// Each [`Simulator::step`] models one clock cycle: inputs are applied, the
/// combinational network settles (topological evaluation), outputs are
/// sampled, and then every flip-flop captures its data input.
///
/// # Fault hooks
///
/// The simulator implements the paper's fault model (§3): transient
/// bit-flips and permanent stuck-at effects, spatially located on wires
/// (nets), on combinational/sequential cells (a fault on a cell manifests on
/// its output net), on individual cell input pins, or directly in the state
/// registers. Temporal placement is up to the caller: arm a transient fault,
/// run the target cycle, then clear it.
///
/// # Example
///
/// ```
/// use scfi_netlist::{ModuleBuilder, Simulator};
///
/// let mut b = ModuleBuilder::new("pass");
/// let a = b.input("a");
/// let y = b.buf(a);
/// b.output("y", y);
/// let m = b.finish().expect("valid");
///
/// let mut sim = Simulator::new(&m);
/// assert_eq!(sim.step(&[true]), vec![true]);
/// sim.set_net_stuck(y, false); // stuck-at-0 on the output wire
/// assert_eq!(sim.step(&[true]), vec![false]);
/// ```
#[derive(Debug)]
pub struct Simulator<'m> {
    module: &'m Module,
    /// Per-net evaluation scratch, rewritten every cycle.
    values: Vec<bool>,
    /// Stored state per register, parallel to `module.registers()`.
    reg_state: Vec<bool>,
    cycle: u64,
    net_flip: HashSet<u32>,
    net_stuck: HashMap<u32, bool>,
    pin_flip: HashSet<(u32, u8)>,
    pin_stuck: HashMap<(u32, u8), bool>,
}

impl<'m> Simulator<'m> {
    /// Creates a simulator with all registers at their reset values.
    pub fn new(module: &'m Module) -> Self {
        let reg_state = module
            .registers()
            .iter()
            .map(|&r| match module.cell(r).kind {
                CellKind::Dff { init } => init,
                _ => unreachable!("registers() yields only flip-flops"),
            })
            .collect();
        Simulator {
            module,
            values: vec![false; module.len()],
            reg_state,
            cycle: 0,
            net_flip: HashSet::new(),
            net_stuck: HashMap::new(),
            pin_flip: HashSet::new(),
            pin_stuck: HashMap::new(),
        }
    }

    /// The module under simulation.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Completed clock cycles since construction or the last
    /// [`Simulator::reset`].
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Returns registers to their reset values and restarts the cycle
    /// counter. Fault state is preserved (clear it separately with
    /// [`Simulator::clear_faults`]).
    pub fn reset(&mut self) {
        for (i, &r) in self.module.registers().iter().enumerate() {
            self.reg_state[i] = match self.module.cell(r).kind {
                CellKind::Dff { init } => init,
                _ => unreachable!(),
            };
        }
        self.cycle = 0;
    }

    /// Overwrites all register state and restarts the cycle counter — the
    /// cheap way to reuse one simulator across many campaign injections
    /// instead of paying [`Simulator::new`] allocation per injection.
    /// Armed faults are preserved (pair with [`Simulator::clear_faults`]).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn reset_to(&mut self, regs: &[bool]) {
        self.set_register_values(regs);
        self.cycle = 0;
    }

    fn apply_net_fault(&self, net: u32, raw: bool) -> bool {
        let mut v = raw;
        if let Some(&s) = self.net_stuck.get(&net) {
            v = s;
        }
        if self.net_flip.contains(&net) {
            v = !v;
        }
        v
    }

    fn read_pin(&self, cell: u32, pin: usize, net: NetId) -> bool {
        let mut v = self.values[net.index()];
        if let Some(&s) = self.pin_stuck.get(&(cell, pin as u8)) {
            v = s;
        }
        if self.pin_flip.contains(&(cell, pin as u8)) {
            v = !v;
        }
        v
    }

    /// Advances one clock cycle and returns the output port values (port
    /// order), sampled after combinational settling and before the register
    /// update.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the module's input count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.module.outputs().len());
        self.step_into(inputs, &mut out);
        out
    }

    /// Allocation-free variant of [`Simulator::step`]: samples the output
    /// ports into `outputs` (cleared first) instead of returning a fresh
    /// `Vec`. This is the hot-loop entry point for fault campaigns.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the module's input count.
    pub fn step_into(&mut self, inputs: &[bool], outputs: &mut Vec<bool>) {
        self.eval_comb(inputs);
        self.sample_outputs_into(outputs);
        self.commit_registers();
        self.cycle += 1;
    }

    /// Evaluates the combinational network for the current cycle without
    /// committing registers — useful for probing intermediate nets.
    pub fn eval_comb(&mut self, inputs: &[bool]) {
        let m = self.module;
        assert_eq!(
            inputs.len(),
            m.inputs().len(),
            "input count mismatch: got {}, module has {}",
            inputs.len(),
            m.inputs().len()
        );
        // Phase 0: source nets (inputs, constants, register outputs).
        for (&net, &v) in m.inputs().iter().zip(inputs) {
            self.values[net.index()] = self.apply_net_fault(net.0, v);
        }
        for (i, cell) in m.cells().iter().enumerate() {
            if let CellKind::Const(c) = cell.kind {
                self.values[i] = self.apply_net_fault(i as u32, c);
            }
        }
        for (ri, &r) in m.registers().iter().enumerate() {
            self.values[r.index()] = self.apply_net_fault(r.0, self.reg_state[ri]);
        }
        // Phase 1: combinational settle in topological order.
        for &c in m.topo_order() {
            let cell = m.cell(c);
            let raw = match cell.kind {
                CellKind::Buf => self.read_pin(c.0, 0, cell.pins[0]),
                CellKind::Not => !self.read_pin(c.0, 0, cell.pins[0]),
                CellKind::And => {
                    self.read_pin(c.0, 0, cell.pins[0]) & self.read_pin(c.0, 1, cell.pins[1])
                }
                CellKind::Or => {
                    self.read_pin(c.0, 0, cell.pins[0]) | self.read_pin(c.0, 1, cell.pins[1])
                }
                CellKind::Xor => {
                    self.read_pin(c.0, 0, cell.pins[0]) ^ self.read_pin(c.0, 1, cell.pins[1])
                }
                CellKind::Nand => {
                    !(self.read_pin(c.0, 0, cell.pins[0]) & self.read_pin(c.0, 1, cell.pins[1]))
                }
                CellKind::Nor => {
                    !(self.read_pin(c.0, 0, cell.pins[0]) | self.read_pin(c.0, 1, cell.pins[1]))
                }
                CellKind::Xnor => {
                    !(self.read_pin(c.0, 0, cell.pins[0]) ^ self.read_pin(c.0, 1, cell.pins[1]))
                }
                CellKind::Mux => {
                    let sel = self.read_pin(c.0, 0, cell.pins[0]);
                    if sel {
                        self.read_pin(c.0, 2, cell.pins[2])
                    } else {
                        self.read_pin(c.0, 1, cell.pins[1])
                    }
                }
                CellKind::Input | CellKind::Const(_) | CellKind::Dff { .. } => {
                    unreachable!("topo order contains only combinational cells")
                }
            };
            self.values[c.index()] = self.apply_net_fault(c.0, raw);
        }
    }

    /// Samples the output ports after [`Simulator::eval_comb`].
    pub fn sample_outputs(&self) -> Vec<bool> {
        let mut out = Vec::with_capacity(self.module.outputs().len());
        self.sample_outputs_into(&mut out);
        out
    }

    /// Samples the output ports into `out` (cleared first) without
    /// allocating — the campaign-loop variant of
    /// [`Simulator::sample_outputs`].
    pub fn sample_outputs_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(
            self.module
                .outputs()
                .iter()
                .map(|&(_, net)| self.values[net.index()]),
        );
    }

    /// Commits every flip-flop's data input into its state, in place.
    ///
    /// The data inputs are read from the settled net values (never from
    /// `reg_state` itself), so the commit needs no intermediate buffer.
    pub fn commit_registers(&mut self) {
        let m = self.module;
        for (i, &r) in m.registers().iter().enumerate() {
            let v = self.read_pin(r.0, 0, m.cell(r).pins[0]);
            self.reg_state[i] = v;
        }
    }

    /// Reads the settled value of an arbitrary net (valid after a step or
    /// an explicit [`Simulator::eval_comb`]).
    pub fn peek(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Current stored register values, in `module.registers()` order.
    pub fn register_values(&self) -> &[bool] {
        &self.reg_state
    }

    /// Overwrites all register state at once (e.g. to start a scenario in a
    /// given FSM state).
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn set_register_values(&mut self, values: &[bool]) {
        assert_eq!(
            values.len(),
            self.reg_state.len(),
            "register count mismatch"
        );
        self.reg_state.copy_from_slice(values);
    }

    /// Flips one stored register bit in place — a direct FT1 fault into the
    /// state register.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a flip-flop of this module.
    pub fn flip_register(&mut self, reg: CellId) {
        let idx = self
            .module
            .register_position(reg)
            .unwrap_or_else(|| panic!("{reg:?} is not a register"));
        self.reg_state[idx] = !self.reg_state[idx];
    }

    // ----- fault plumbing ----------------------------------------------------

    /// Arms a transient bit-flip on a net; active every cycle until cleared.
    pub fn set_net_flip(&mut self, net: NetId) {
        self.net_flip.insert(net.0);
    }

    /// Forces a net to a constant value (stuck-at fault).
    pub fn set_net_stuck(&mut self, net: NetId, value: bool) {
        self.net_stuck.insert(net.0, value);
    }

    /// Removes any fault on a net.
    pub fn clear_net_fault(&mut self, net: NetId) {
        self.net_flip.remove(&net.0);
        self.net_stuck.remove(&net.0);
    }

    /// Arms a transient bit-flip on one input pin of one cell.
    pub fn set_pin_flip(&mut self, cell: CellId, pin: usize) {
        self.pin_flip.insert((cell.0, pin as u8));
    }

    /// Forces one input pin of one cell to a constant value.
    pub fn set_pin_stuck(&mut self, cell: CellId, pin: usize, value: bool) {
        self.pin_stuck.insert((cell.0, pin as u8), value);
    }

    /// Removes any fault on a pin.
    pub fn clear_pin_fault(&mut self, cell: CellId, pin: usize) {
        self.pin_flip.remove(&(cell.0, pin as u8));
        self.pin_stuck.remove(&(cell.0, pin as u8));
    }

    /// Removes all armed faults.
    pub fn clear_faults(&mut self) {
        self.net_flip.clear();
        self.net_stuck.clear();
        self.pin_flip.clear();
        self.pin_stuck.clear();
    }

    /// Returns `true` if any fault is currently armed.
    pub fn has_faults(&self) -> bool {
        !(self.net_flip.is_empty()
            && self.net_stuck.is_empty()
            && self.pin_flip.is_empty()
            && self.pin_stuck.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;

    /// A 2-bit counter: q1 q0, increments each cycle.
    fn counter() -> Module {
        let mut b = ModuleBuilder::new("counter2");
        let q0 = b.dff_uninit(false);
        let q1 = b.dff_uninit(false);
        let n0 = b.not(q0);
        let n1 = b.xor2(q1, q0);
        b.set_dff_input(q0, n0);
        b.set_dff_input(q1, n1);
        b.output("q0", q0);
        b.output("q1", q1);
        b.finish().unwrap()
    }

    #[test]
    fn counter_counts() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        let seq: Vec<(bool, bool)> = (0..5)
            .map(|_| {
                let o = sim.step(&[]);
                (o[0], o[1])
            })
            .collect();
        assert_eq!(
            seq,
            vec![
                (false, false),
                (true, false),
                (false, true),
                (true, true),
                (false, false)
            ]
        );
        assert_eq!(sim.cycle(), 5);
    }

    #[test]
    fn reset_restores_init() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        sim.step(&[]);
        sim.step(&[]);
        sim.reset();
        assert_eq!(sim.step(&[]), vec![false, false]);
    }

    #[test]
    fn transient_net_flip_lasts_one_armed_cycle() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        let q0 = m.registers()[0].net();
        // Flip q0's *output net* during cycle 0: comb sees q0=1, so next
        // q0 = 0 (not), q1 = 1 (xor).
        sim.set_net_flip(q0);
        let out = sim.step(&[]);
        assert_eq!(out, vec![true, false]); // the flip is visible at the output
        sim.clear_net_fault(q0);
        let out = sim.step(&[]);
        assert_eq!(out, vec![false, true]); // corrupted state persisted
    }

    #[test]
    fn stuck_at_persists() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        let q0 = m.registers()[0].net();
        sim.set_net_stuck(q0, false);
        for _ in 0..4 {
            let out = sim.step(&[]);
            assert!(!out[0], "q0 must read stuck-0");
        }
        assert!(sim.has_faults());
        sim.clear_faults();
        assert!(!sim.has_faults());
    }

    #[test]
    fn pin_fault_affects_only_that_pin() {
        let mut b = ModuleBuilder::new("fan");
        let a = b.input("a");
        let y1 = b.buf(a);
        let y2 = b.buf(a);
        b.output("y1", y1);
        b.output("y2", y2);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        sim.set_pin_flip(y1.cell(), 0);
        assert_eq!(sim.step(&[true]), vec![false, true]);
    }

    #[test]
    fn register_flip_changes_state_directly() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        sim.flip_register(m.registers()[1]); // q1 ^= 1 while in state 00
        assert_eq!(sim.step(&[]), vec![false, true]); // now reads 2
    }

    #[test]
    fn peek_reads_internal_nets() {
        let mut b = ModuleBuilder::new("peek");
        let a = b.input("a");
        let n = b.not(a);
        let y = b.not(n);
        b.output("y", y);
        let m = b.finish().unwrap();
        let mut sim = Simulator::new(&m);
        sim.step(&[true]);
        assert!(!sim.peek(n));
        assert!(sim.peek(y));
    }

    #[test]
    fn set_register_values_overrides_state() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        sim.set_register_values(&[true, true]);
        assert_eq!(sim.step(&[]), vec![true, true]);
    }

    #[test]
    #[should_panic(expected = "input count mismatch")]
    fn wrong_input_count_panics() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        let _ = sim.step(&[true]);
    }

    #[test]
    fn reset_to_restarts_from_arbitrary_state() {
        let m = counter();
        let mut sim = Simulator::new(&m);
        sim.step(&[]);
        sim.step(&[]);
        sim.reset_to(&[true, true]);
        assert_eq!(sim.cycle(), 0);
        assert_eq!(sim.step(&[]), vec![true, true]);
    }

    #[test]
    fn step_into_matches_step() {
        let m = counter();
        let mut a = Simulator::new(&m);
        let mut b = Simulator::new(&m);
        let mut out = Vec::new();
        for _ in 0..5 {
            b.step_into(&[], &mut out);
            assert_eq!(a.step(&[]), out);
        }
        assert_eq!(a.cycle(), b.cycle());
    }

    #[test]
    fn register_position_identifies_flip_flops() {
        let m = counter();
        for (i, &r) in m.registers().iter().enumerate() {
            assert_eq!(m.register_position(r), Some(i));
        }
        let comb = m.topo_order()[0];
        assert_eq!(m.register_position(comb), None);
    }
}
