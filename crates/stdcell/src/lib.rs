//! Standard-cell area/timing model: the reproduction's stand-in for
//! Nangate45 + Yosys/Cadence Genus (paper §6.1–§6.2).
//!
//! The SCFI evaluation reports **area in gate equivalents (GE)** — cell area
//! normalized so a NAND2 drive-1 cell is 1 GE — and **timing in
//! picoseconds** from synthesis at a target clock period. This crate models
//! both without an external EDA tool:
//!
//! * [`Library`] — a cell library with GE areas, intrinsic delays, and
//!   fanout-load slopes, at three drive strengths; the default
//!   [`Library::nangate45_like`] uses values representative of the
//!   open-source Nangate45 library the paper synthesizes with,
//! * [`MappedModule`] — a technology-mapped netlist with total area,
//!   static timing analysis (critical path, minimum clock period), and
//! * [`MappedModule::size_for_period`] — a greedy critical-path gate sizer
//!   emulating how a synthesis tool trades area for speed as the clock
//!   constraint tightens; sweeping the constraint regenerates the
//!   area–time curves of Fig. 8.
//!
//! Absolute numbers differ from real silicon libraries; all three paper
//! configurations (unprotected / redundancy / SCFI) are mapped with the
//! same model, so the *relative* areas that Table 1 and Fig. 8 report are
//! preserved.
//!
//! # Example
//!
//! ```
//! use scfi_netlist::ModuleBuilder;
//! use scfi_stdcell::Library;
//!
//! let mut b = ModuleBuilder::new("m");
//! let x = b.input("x");
//! let y = b.input("y");
//! let q = b.dff_uninit(false);
//! let s = b.xor2(x, y);
//! let d = b.xor2(s, q);
//! b.set_dff_input(q, d);
//! b.output("q", q);
//! let module = b.finish()?;
//!
//! let lib = Library::nangate45_like();
//! let mapped = lib.map(&module);
//! assert!(mapped.area_ge() > 8.0); // 2 XOR + 1 DFF + overhead
//! assert!(mapped.min_period_ps() > 0.0);
//! # Ok::<(), scfi_netlist::ValidateError>(())
//! ```

use std::collections::HashMap;
use std::fmt;

use scfi_netlist::{CellId, CellKind, Module};

/// Drive strength of a mapped cell. Larger drives push fanout loads faster
/// at an area premium.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Drive {
    /// Minimum-size cell.
    #[default]
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// Area multiplier relative to X1.
    pub fn area_factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 1.4,
            Drive::X4 => 2.1,
        }
    }

    /// Load-delay divisor relative to X1.
    pub fn strength(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
        }
    }

    /// The next larger drive, if any.
    pub fn upsized(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => None,
        }
    }
}

/// Timing/area data for one library cell (at drive X1).
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Library cell name, e.g. `"XOR2"`.
    pub name: &'static str,
    /// Area in gate equivalents (NAND2 = 1.0).
    pub area_ge: f64,
    /// Intrinsic propagation delay in picoseconds.
    pub delay_ps: f64,
    /// Additional delay per fanout unit, divided by drive strength.
    pub load_ps_per_fanout: f64,
}

/// A standard-cell library: one [`CellSpec`] per netlist [`CellKind`].
#[derive(Clone, Debug)]
pub struct Library {
    name: String,
    specs: HashMap<&'static str, CellSpec>,
    /// Flip-flop clock-to-Q delay (ps).
    clk_to_q_ps: f64,
    /// Flip-flop setup time (ps).
    setup_ps: f64,
}

impl Library {
    /// A library with GE areas and delays representative of the
    /// open-source Nangate45 library used in the paper's Yosys flow.
    ///
    /// Delays are calibrated so the Table-1 FSM modules reach their
    /// maximum frequency in the paper's Figure-8 sweep window
    /// (3200–6000 ps): an unprotected FSM of ~12 logic levels closes
    /// timing around 300 MHz, as §6.2 reports for Cadence synthesis on a
    /// 300+ MHz design.
    ///
    /// Values (X1 drive): INV 0.67 GE / 70 ps, NAND2 1.0 / 98, NOR2
    /// 1.0 / 112, AND2 1.33 / 140, OR2 1.33 / 154, XOR2 2.0 / 196, XNOR2
    /// 2.0 / 210, MUX2 2.33 / 210, BUF 1.0 / 126, DFF 4.67 GE with 420 ps
    /// clock-to-Q and 280 ps setup, tie cells 0.33 GE.
    pub fn nangate45_like() -> Library {
        let mut specs = HashMap::new();
        for spec in [
            CellSpec {
                name: "TIE",
                area_ge: 0.33,
                delay_ps: 0.0,
                load_ps_per_fanout: 0.0,
            },
            CellSpec {
                name: "BUF",
                area_ge: 1.0,
                delay_ps: 126.0,
                load_ps_per_fanout: 42.0,
            },
            CellSpec {
                name: "INV",
                area_ge: 0.67,
                delay_ps: 70.0,
                load_ps_per_fanout: 56.0,
            },
            CellSpec {
                name: "AND2",
                area_ge: 1.33,
                delay_ps: 140.0,
                load_ps_per_fanout: 63.0,
            },
            CellSpec {
                name: "OR2",
                area_ge: 1.33,
                delay_ps: 154.0,
                load_ps_per_fanout: 70.0,
            },
            CellSpec {
                name: "XOR2",
                area_ge: 2.0,
                delay_ps: 196.0,
                load_ps_per_fanout: 84.0,
            },
            CellSpec {
                name: "NAND2",
                area_ge: 1.0,
                delay_ps: 98.0,
                load_ps_per_fanout: 63.0,
            },
            CellSpec {
                name: "NOR2",
                area_ge: 1.0,
                delay_ps: 112.0,
                load_ps_per_fanout: 70.0,
            },
            CellSpec {
                name: "XNOR2",
                area_ge: 2.0,
                delay_ps: 210.0,
                load_ps_per_fanout: 84.0,
            },
            CellSpec {
                name: "MUX2",
                area_ge: 2.33,
                delay_ps: 210.0,
                load_ps_per_fanout: 84.0,
            },
            CellSpec {
                name: "DFF",
                area_ge: 4.67,
                delay_ps: 0.0,
                load_ps_per_fanout: 70.0,
            },
        ] {
            specs.insert(spec.name, spec);
        }
        Library {
            name: "nangate45-like".to_string(),
            specs,
            clk_to_q_ps: 420.0,
            setup_ps: 280.0,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flip-flop clock-to-Q delay.
    pub fn clk_to_q_ps(&self) -> f64 {
        self.clk_to_q_ps
    }

    /// Flip-flop setup time.
    pub fn setup_ps(&self) -> f64 {
        self.setup_ps
    }

    /// The spec implementing a netlist cell kind, or `None` for ports
    /// (which map to no cell).
    pub fn spec_for(&self, kind: &CellKind) -> Option<&CellSpec> {
        let name = match kind {
            CellKind::Input => return None,
            CellKind::Const(_) => "TIE",
            CellKind::Buf => "BUF",
            CellKind::Not => "INV",
            CellKind::And => "AND2",
            CellKind::Or => "OR2",
            CellKind::Xor => "XOR2",
            CellKind::Nand => "NAND2",
            CellKind::Nor => "NOR2",
            CellKind::Xnor => "XNOR2",
            CellKind::Mux => "MUX2",
            CellKind::Dff { .. } => "DFF",
        };
        Some(&self.specs[name])
    }

    /// Technology-maps a module (all cells at X1).
    pub fn map<'l, 'm>(&'l self, module: &'m Module) -> MappedModule<'l, 'm> {
        let drives = vec![Drive::X1; module.len()];
        let mut fanout = vec![0usize; module.len()];
        for cell in module.cells() {
            for pin in &cell.pins {
                fanout[pin.index()] += 1;
            }
        }
        for (_, net) in module.outputs() {
            fanout[net.index()] += 1;
        }
        MappedModule {
            library: self,
            module,
            drives,
            fanout,
        }
    }
}

/// Result of sizing a mapped module for a clock-period target.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SizingResult {
    /// Whether the target period was met.
    pub met: bool,
    /// The achieved minimum clock period (ps).
    pub period_ps: f64,
    /// Total area after sizing (GE).
    pub area_ge: f64,
}

/// A technology-mapped module: netlist + per-cell drive assignments.
///
/// Created by [`Library::map`]; query area with
/// [`MappedModule::area_ge`], timing with [`MappedModule::min_period_ps`],
/// and trade area for speed with [`MappedModule::size_for_period`].
#[derive(Clone, Debug)]
pub struct MappedModule<'l, 'm> {
    library: &'l Library,
    module: &'m Module,
    drives: Vec<Drive>,
    fanout: Vec<usize>,
}

impl<'l, 'm> MappedModule<'l, 'm> {
    /// The mapped netlist.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// The library used for mapping.
    pub fn library(&self) -> &'l Library {
        self.library
    }

    /// The drive assigned to a cell.
    pub fn drive(&self, cell: CellId) -> Drive {
        self.drives[cell.index()]
    }

    /// Total mapped area in gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.module
            .cells()
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                self.library
                    .spec_for(&c.kind)
                    .map(|s| s.area_ge * self.drives[i].area_factor())
            })
            .sum()
    }

    /// Propagation delay of one mapped cell at its current drive.
    fn cell_delay(&self, idx: usize) -> f64 {
        let cell = &self.module.cells()[idx];
        match self.library.spec_for(&cell.kind) {
            None => 0.0,
            Some(spec) => {
                let load = self.fanout[idx].max(1) as f64;
                spec.delay_ps + spec.load_ps_per_fanout * load / self.drives[idx].strength()
            }
        }
    }

    /// Arrival time of every net (ps), with flip-flop outputs launching at
    /// clock-to-Q.
    fn arrival_times(&self) -> Vec<f64> {
        let m = self.module;
        let mut arrival = vec![0.0f64; m.len()];
        for &r in m.registers() {
            // Launch: clock-to-Q plus the register's own load delay.
            arrival[r.index()] = self.library.clk_to_q_ps + self.cell_delay(r.index())
                - self
                    .library
                    .spec_for(&m.cell(r).kind)
                    .map(|s| s.delay_ps)
                    .unwrap_or(0.0);
        }
        for &c in m.topo_order() {
            let cell = m.cell(c);
            let in_max = cell
                .pins
                .iter()
                .map(|p| arrival[p.index()])
                .fold(0.0f64, f64::max);
            arrival[c.index()] = in_max + self.cell_delay(c.index());
        }
        arrival
    }

    /// The minimum clock period: the worst register-to-register or
    /// register/input-to-output path plus setup.
    pub fn min_period_ps(&self) -> f64 {
        let m = self.module;
        let arrival = self.arrival_times();
        let mut worst = 0.0f64;
        for &r in m.registers() {
            let d = m.cell(r).pins[0];
            worst = worst.max(arrival[d.index()] + self.library.setup_ps);
        }
        for (_, net) in m.outputs() {
            worst = worst.max(arrival[net.index()]);
        }
        worst
    }

    /// The cells along the current critical path, from source to endpoint.
    pub fn critical_path(&self) -> Vec<CellId> {
        let m = self.module;
        let arrival = self.arrival_times();
        // Find the endpoint net.
        let mut end: Option<usize> = None;
        let mut worst = f64::MIN;
        for &r in m.registers() {
            let d = m.cell(r).pins[0].index();
            if arrival[d] > worst {
                worst = arrival[d];
                end = Some(d);
            }
        }
        for (_, net) in m.outputs() {
            if arrival[net.index()] > worst {
                worst = arrival[net.index()];
                end = Some(net.index());
            }
        }
        let mut path = Vec::new();
        let mut cur = end;
        while let Some(idx) = cur {
            path.push(CellId(idx as u32));
            let cell = &m.cells()[idx];
            cur = cell
                .pins
                .iter()
                .map(|p| p.index())
                .max_by(|&a, &b| arrival[a].partial_cmp(&arrival[b]).expect("finite"));
            if matches!(
                cell.kind,
                CellKind::Dff { .. } | CellKind::Input | CellKind::Const(_)
            ) {
                break;
            }
        }
        path.reverse();
        path
    }

    /// Greedy critical-path sizing toward a target clock period.
    ///
    /// Repeatedly upsizes the slowest-contributing upsizable cell on the
    /// critical path until the target is met or no further improvement is
    /// possible — a coarse emulation of how Genus trades area for timing
    /// along the Fig. 8 sweep.
    pub fn size_for_period(&mut self, target_ps: f64) -> SizingResult {
        const MAX_ITERS: usize = 10_000;
        let mut iters = 0;
        loop {
            let period = self.min_period_ps();
            if period <= target_ps {
                return SizingResult {
                    met: true,
                    period_ps: period,
                    area_ge: self.area_ge(),
                };
            }
            iters += 1;
            if iters > MAX_ITERS {
                return SizingResult {
                    met: false,
                    period_ps: period,
                    area_ge: self.area_ge(),
                };
            }
            // Upsize the path cell with the largest load-delay contribution
            // that can still be upsized.
            let path = self.critical_path();
            let candidate = path
                .iter()
                .filter(|c| self.drives[c.index()].upsized().is_some())
                .max_by(|a, b| {
                    let da = self.load_component(a.index());
                    let db = self.load_component(b.index());
                    da.partial_cmp(&db).expect("finite")
                })
                .copied();
            match candidate {
                Some(c) => {
                    self.drives[c.index()] = self.drives[c.index()].upsized().expect("filtered");
                }
                None => {
                    return SizingResult {
                        met: false,
                        period_ps: period,
                        area_ge: self.area_ge(),
                    }
                }
            }
        }
    }

    /// The load-dependent part of a cell's delay (what upsizing reduces).
    fn load_component(&self, idx: usize) -> f64 {
        let cell = &self.module.cells()[idx];
        match self.library.spec_for(&cell.kind) {
            None => 0.0,
            Some(spec) => {
                let load = self.fanout[idx].max(1) as f64;
                spec.load_ps_per_fanout * load / self.drives[idx].strength()
            }
        }
    }

    /// Maximum clock frequency in MHz at the current sizing.
    pub fn max_frequency_mhz(&self) -> f64 {
        1.0e6 / self.min_period_ps()
    }
}

impl fmt::Display for MappedModule<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mapped to {}: {:.1} GE, min period {:.0} ps",
            self.module.name(),
            self.library.name,
            self.area_ge(),
            self.min_period_ps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_netlist::ModuleBuilder;

    fn xor_chain(n: usize) -> Module {
        let mut b = ModuleBuilder::new(format!("chain{n}"));
        let a = b.input("a");
        let x = b.input("x");
        let mut cur = b.xor2(a, x);
        for _ in 1..n {
            cur = b.xor2(cur, x);
        }
        b.output("y", cur);
        b.finish().unwrap()
    }

    #[test]
    fn area_sums_cells() {
        let lib = Library::nangate45_like();
        let m = xor_chain(3);
        let mapped = lib.map(&m);
        // 3 XOR2 at 2.0 GE.
        assert!((mapped.area_ge() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn longer_chains_are_slower() {
        let lib = Library::nangate45_like();
        let m2 = xor_chain(2);
        let m8 = xor_chain(8);
        assert!(lib.map(&m8).min_period_ps() > lib.map(&m2).min_period_ps());
    }

    #[test]
    fn registers_add_clk_to_q_and_setup() {
        let lib = Library::nangate45_like();
        let mut b = ModuleBuilder::new("reg2reg");
        let q = b.dff_uninit(false);
        let n = b.not(q);
        b.set_dff_input(q, n);
        b.output("q", q);
        let m = b.finish().unwrap();
        let mapped = lib.map(&m);
        // clk-to-q + INV delay + setup, all > 700 ps in this model.
        let p = mapped.min_period_ps();
        assert!(p > 700.0, "period {p}");
        assert!(p < 2100.0, "period {p}");
    }

    #[test]
    fn critical_path_traverses_chain() {
        let lib = Library::nangate45_like();
        let m = xor_chain(5);
        let mapped = lib.map(&m);
        let path = mapped.critical_path();
        assert!(path.len() >= 5, "path {path:?}");
    }

    #[test]
    fn sizing_meets_feasible_target() {
        let lib = Library::nangate45_like();
        let m = xor_chain(12);
        let mut mapped = lib.map(&m);
        let relaxed = mapped.min_period_ps();
        let area_before = mapped.area_ge();
        let target = relaxed * 0.9;
        let result = mapped.size_for_period(target);
        assert!(result.met, "sizing failed: {result:?}");
        assert!(result.period_ps <= target);
        assert!(result.area_ge > area_before, "sizing must cost area");
    }

    #[test]
    fn sizing_reports_failure_on_impossible_target() {
        let lib = Library::nangate45_like();
        let m = xor_chain(12);
        let mut mapped = lib.map(&m);
        let result = mapped.size_for_period(1.0); // 1 ps is impossible
        assert!(!result.met);
        assert!(result.period_ps > 1.0);
    }

    #[test]
    fn area_time_tradeoff_is_monotone() {
        // Tighter targets must never yield smaller area.
        let lib = Library::nangate45_like();
        let m = xor_chain(16);
        let relaxed = lib.map(&m).min_period_ps();
        let mut last_area = 0.0;
        for factor in [1.0, 0.95, 0.9, 0.85] {
            let mut mapped = lib.map(&m);
            let r = mapped.size_for_period(relaxed * factor);
            assert!(r.area_ge >= last_area - 1e-9, "factor {factor}");
            last_area = r.area_ge;
        }
    }

    #[test]
    fn drive_ladder() {
        assert_eq!(Drive::X1.upsized(), Some(Drive::X2));
        assert_eq!(Drive::X2.upsized(), Some(Drive::X4));
        assert_eq!(Drive::X4.upsized(), None);
        assert!(Drive::X4.area_factor() > Drive::X1.area_factor());
        assert!(Drive::X4.strength() > Drive::X1.strength());
    }

    #[test]
    fn ports_have_no_area() {
        let lib = Library::nangate45_like();
        let mut b = ModuleBuilder::new("wire");
        let a = b.input("a");
        b.output("y", a);
        let m = b.finish().unwrap();
        assert_eq!(lib.map(&m).area_ge(), 0.0);
    }

    #[test]
    fn max_frequency_inverse_of_period() {
        let lib = Library::nangate45_like();
        let m = xor_chain(4);
        let mapped = lib.map(&m);
        let f = mapped.max_frequency_mhz();
        let p = mapped.min_period_ps();
        assert!((f - 1.0e6 / p).abs() < 1e-9);
    }

    #[test]
    fn display_reports_area_and_period() {
        let lib = Library::nangate45_like();
        let m = xor_chain(2);
        let mapped = lib.map(&m);
        let s = mapped.to_string();
        assert!(s.contains("GE"));
        assert!(s.contains("ps"));
    }
}
