//! OpenTitan-like benchmark FSM suite — the seven security-sensitive state
//! machines of the paper's Table 1, with module-level area profiles.
//!
//! The paper evaluates SCFI on FSMs of the OpenTitan secure element
//! (adc_ctrl, aes, i2c, ibex, otbn, pwrmgr). OpenTitan's real modules are
//! SystemVerilog designs with full datapaths; this reproduction substitutes
//! **synthetic FSMs of matching scale** (state counts, control-signal
//! counts and transition structure follow the real modules' FSMs) plus a
//! per-module datapath area constant:
//!
//! * the FSM logic itself is genuinely synthesized, protected, and measured
//!   by our pass — nothing about the *overhead* numbers is copied,
//! * [`BenchFsm::paper_module_ge`] records the paper's "Unprotected
//!   Area (GE)" column; benchmark harnesses derive the non-FSM datapath
//!   area as `max(0, paper_module_ge − mapped FSM area)` so module-level
//!   percentages are comparable in magnitude to Table 1.
//!
//! # Example
//!
//! ```
//! let suite = scfi_opentitan::all();
//! assert_eq!(suite.len(), 7);
//! let adc = scfi_opentitan::by_name("adc_ctrl_fsm").expect("known FSM");
//! assert_eq!(adc.fsm.state_count(), 13);
//! ```

use scfi_fsm::{parse_fsm, Fsm};

/// One Table-1 benchmark entry.
#[derive(Debug)]
pub struct BenchFsm {
    /// Module name as printed in Table 1.
    pub name: &'static str,
    /// The paper's unprotected whole-module area in gate equivalents
    /// (Table 1, "Unprotected Area (GE)").
    pub paper_module_ge: f64,
    /// The benchmark FSM.
    pub fsm: Fsm,
}

/// ADC controller power/sampling sequencer (13 states), modeled on
/// OpenTitan `adc_ctrl`'s `adc_ctrl_fsm`.
const ADC_CTRL: &str = "
fsm adc_ctrl_fsm {
  inputs pwrup_done, wakeup_timer, oneshot_mode, lp_mode, channel_done,
         match_hit, filter_stable, pwrdn_timer;
  outputs adc_pd, adc_chn_sel, wakeup_req;
  reset PWRDN;
  state PWRDN        { out adc_pd; if oneshot_mode -> ONEST_PWRUP; if lp_mode -> LP_PWRUP; if wakeup_timer -> PWRUP; }
  state PWRUP        { if pwrup_done -> ONEST_CH0; }
  state ONEST_PWRUP  { if pwrup_done -> ONEST_CH0; }
  state ONEST_CH0    { out adc_chn_sel; if channel_done -> ONEST_CH1; }
  state ONEST_CH1    { out adc_chn_sel; if channel_done -> ONEST_DONE; }
  state ONEST_DONE   { out wakeup_req; goto PWRDN; }
  state LP_PWRUP     { if pwrup_done -> LP_CH0; }
  state LP_CH0       { out adc_chn_sel; if channel_done && match_hit -> LP_EVAL; if channel_done -> LP_SLP; }
  state LP_EVAL      { if filter_stable -> NP_CH0; if pwrdn_timer -> LP_SLP; }
  state LP_SLP       { out adc_pd; if wakeup_timer -> LP_PWRUP; }
  state NP_CH0       { out adc_chn_sel; if channel_done -> NP_CH1; }
  state NP_CH1       { out adc_chn_sel; if channel_done && match_hit -> NP_DONE; if channel_done -> LP_SLP; }
  state NP_DONE      { out wakeup_req; if pwrdn_timer -> PWRDN; }
}";

/// AES unit control FSM (7 states), modeled on OpenTitan `aes_control`.
const AES_CONTROL: &str = "
fsm aes_control {
  inputs key_valid, data_valid, start, rounds_done, clear_req, out_ready, prng_ok;
  outputs busy, out_valid, clearing;
  reset IDLE;
  state IDLE    { if clear_req -> CLEAR_S; if start && key_valid && data_valid -> INIT; }
  state INIT    { out busy; if prng_ok -> ROUNDS; }
  state ROUNDS  { out busy; if rounds_done -> FINISH; if clear_req -> CLEAR_S; }
  state FINISH  { out busy, out_valid; if out_ready -> IDLE; }
  state CLEAR_S { out clearing; goto CLEAR_KD; }
  state CLEAR_KD{ out clearing; if prng_ok -> CLEAR_OUT; }
  state CLEAR_OUT { out clearing; goto IDLE; }
}";

/// I2C host/target combined flow controller (30 states), modeled on
/// OpenTitan `i2c_fsm` (the largest FSM of Table 1).
const I2C_FSM: &str = "
fsm i2c_fsm {
  inputs host_enable, target_enable, fmt_ready, byte_done, bit_done, ack_ok,
         stop_req, restart_req, scl_high, timeout;
  outputs scl_drive, sda_drive, irq_done, irq_nak, bus_active;
  reset IDLE;
  state IDLE          { if host_enable && fmt_ready -> START_H; if target_enable -> ACQ_WAIT; }
  state START_H       { out bus_active, sda_drive; if bit_done -> ADDR_B; if timeout -> ARB_LOST; }
  state ADDR_B        { out bus_active; if byte_done -> ADDR_ACK; if timeout -> HOST_TIMEOUT; }
  state ADDR_ACK      { out bus_active; if ack_ok -> DATA_SEL; if bit_done -> NAK_H; }
  state DATA_SEL      { out bus_active; if fmt_ready -> WRITE_B; if scl_high -> READ_B; }
  state WRITE_B       { out bus_active, sda_drive; if byte_done -> WRITE_ACK; }
  state WRITE_ACK     { out bus_active; if ack_ok && fmt_ready -> DATA_SEL; if ack_ok -> STOP_SETUP; if bit_done -> NAK_H; }
  state READ_B        { out bus_active; if byte_done -> READ_ACK; }
  state READ_ACK      { out bus_active, sda_drive; if fmt_ready -> DATA_SEL; if bit_done -> STOP_SETUP; }
  state NAK_H         { out irq_nak; goto STOP_SETUP; }
  state STOP_SETUP    { out bus_active, scl_drive; if bit_done -> STOP_HOLD; }
  state STOP_HOLD     { out bus_active; if scl_high -> STOP_DONE; if timeout -> BUS_RECOVER; }
  state STOP_DONE     { out irq_done; if restart_req -> RSTART_H; goto IDLE; }
  state RSTART_H      { out bus_active, sda_drive; if bit_done -> ADDR_B; }
  state ACQ_WAIT      { if scl_high -> ACQ_START; if host_enable -> IDLE; }
  state ACQ_START     { out bus_active; if bit_done -> ACQ_ADDR; }
  state ACQ_ADDR      { out bus_active; if byte_done && ack_ok -> ACQ_ACK; if byte_done -> ACQ_NAK; }
  state ACQ_ACK       { out bus_active, sda_drive; if bit_done -> TRANS_SEL; }
  state ACQ_NAK       { out irq_nak; goto ACQ_WAIT; }
  state TRANS_SEL     { out bus_active; if scl_high -> TGT_READ; goto TGT_WRITE; }
  state TGT_WRITE     { out bus_active; if byte_done -> TGT_WACK; if stop_req -> TGT_STOP; }
  state TGT_WACK      { out bus_active, sda_drive; if bit_done -> TGT_WRITE; if timeout -> TGT_TIMEOUT; }
  state TGT_READ      { out bus_active, sda_drive; if byte_done -> TGT_RACK; if stop_req -> TGT_STOP; }
  state TGT_RACK      { out bus_active; if ack_ok -> TGT_READ; if bit_done -> TGT_STOP; }
  state TGT_STOP      { out irq_done; if scl_high -> ACQ_WAIT; goto IDLE; }
  state TGT_TIMEOUT   { out irq_nak; if timeout -> STRETCH; goto ACQ_WAIT; }
  state STRETCH       { out scl_drive, bus_active; if timeout -> TGT_STOP; if byte_done -> TGT_WRITE; }
  state HOST_TIMEOUT  { out irq_nak; goto IDLE; }
  state ARB_LOST      { if scl_high -> IDLE; }
  state BUS_RECOVER   { out scl_drive; if bit_done -> IDLE; if timeout -> HOST_TIMEOUT; }
}";

/// Ibex core controller FSM (9 states), modeled on `ibex_controller`.
const IBEX_CONTROLLER: &str = "
fsm ibex_controller {
  inputs fetch_enable, instr_valid, irq_pending, debug_req, branch_set,
         exception, wfi, ready;
  outputs core_busy, ctrl_fetch, pipe_flush;
  reset RESET;
  state RESET       { if fetch_enable -> BOOT_SET; }
  state BOOT_SET    { out ctrl_fetch; goto FIRST_FETCH; }
  state FIRST_FETCH { out ctrl_fetch, core_busy; if instr_valid -> DECODE; if irq_pending -> IRQ_TAKEN; }
  state DECODE      { out core_busy; if exception -> FLUSH; if branch_set -> FIRST_FETCH; if debug_req -> DBG_TAKEN; if irq_pending -> IRQ_TAKEN; if wfi -> WAIT_SLEEP; }
  state IRQ_TAKEN   { out pipe_flush; goto FIRST_FETCH; }
  state DBG_TAKEN   { out pipe_flush; if ready -> DECODE; }
  state WAIT_SLEEP  { goto SLEEP; }
  state SLEEP       { if irq_pending -> FIRST_FETCH; if debug_req -> DBG_TAKEN; }
  state FLUSH       { out pipe_flush; if ready -> DECODE; if debug_req -> DBG_TAKEN; }
}";

/// Ibex load/store unit FSM (8 states), modeled on `ibex_load_store_unit`.
const IBEX_LSU: &str = "
fsm ibex_lsu {
  inputs req, grant, rvalid, misaligned, pmp_err, rdata_err;
  outputs data_req, addr_incr, lsu_err, done;
  reset IDLE;
  state IDLE            { if req && misaligned -> WAIT_GNT_MIS; if req && pmp_err -> IDLE_ERR; if req -> WAIT_GNT; }
  state WAIT_GNT_MIS    { out data_req; if grant -> WAIT_RVALID_MIS; }
  state WAIT_RVALID_MIS { out addr_incr; if rvalid && rdata_err -> IDLE_ERR; if rvalid -> WAIT_GNT_SPLIT; }
  state WAIT_GNT_SPLIT  { out data_req; if grant -> WAIT_RVALID; }
  state WAIT_GNT        { out data_req; if grant -> WAIT_RVALID; }
  state WAIT_RVALID     { if rvalid && rdata_err -> IDLE_ERR; if rvalid -> DONE_ST; }
  state DONE_ST         { out done; goto IDLE; }
  state IDLE_ERR        { out lsu_err; goto IDLE; }
}";

/// OTBN (big-number accelerator) controller FSM (5 states), modeled on
/// `otbn_controller` — a tiny FSM inside the largest module of Table 1,
/// the case where SCFI's fixed 32-bit MDS cost exceeds plain redundancy.
const OTBN_CONTROLLER: &str = "
fsm otbn_controller {
  inputs start, insn_valid, done_insn, stall, sec_wipe_done, fatal_err;
  outputs busy, wiping, locked_o;
  reset IDLE;
  state IDLE   { if fatal_err -> LOCKED; if start -> RUN; }
  state RUN    { out busy; if fatal_err -> LOCKED; if done_insn -> WIPE; if stall -> STALL; }
  state STALL  { out busy; if fatal_err -> LOCKED; if insn_valid -> RUN; }
  state WIPE   { out wiping; if sec_wipe_done -> IDLE; if fatal_err -> LOCKED; }
  state LOCKED { out locked_o; goto LOCKED; }
}";

/// Power manager sequencing FSM (11 states), modeled on `pwrmgr_fsm` — the
/// smallest module of Table 1, where the FSM dominates and protection
/// overheads are proportionally the largest.
const PWRMGR_FSM: &str = "
fsm pwrmgr_fsm {
  inputs clks_stable, rst_done, otp_done, lc_done, rom_ok, low_power_req,
         wakeup, fall_through;
  outputs pwr_clamp, clk_en, core_rst_n, strap_sample;
  reset LOW_POWER;
  state LOW_POWER     { out pwr_clamp; if wakeup -> ENABLE_CLOCKS; }
  state ENABLE_CLOCKS { out clk_en; if clks_stable -> RELEASE_RST; }
  state RELEASE_RST   { out clk_en; if rst_done -> OTP_INIT; }
  state OTP_INIT      { out clk_en, core_rst_n; if otp_done -> LC_INIT; }
  state LC_INIT       { out clk_en, core_rst_n; if lc_done -> STRAP; }
  state STRAP         { out clk_en, core_rst_n, strap_sample; goto ROM_CHECK; }
  state ROM_CHECK     { out clk_en, core_rst_n; if rom_ok -> ACTIVE; }
  state ACTIVE        { out clk_en, core_rst_n; if low_power_req && fall_through -> FALL_BACK; if low_power_req -> DIS_CLKS; }
  state FALL_BACK     { out clk_en, core_rst_n; goto ACTIVE; }
  state DIS_CLKS      { out core_rst_n; if clks_stable -> PREP_SLEEP; }
  state PREP_SLEEP    { out pwr_clamp; if wakeup -> ENABLE_CLOCKS; goto LOW_POWER; }
}";

/// Secure-boot flow controller (8 states), modeled on OpenTitan's ROM/
/// ROM_EXT boot stages — the multi-step protocol the SCFI introduction's
/// fault attacks (BADFET, voltage glitching) target. Not a Table-1 row:
/// this FSM exists for *multi-cycle* campaigns, where the attacker
/// glitches one step of the measure→verify→unlock→boot handshake and the
/// analysis must judge the whole walk (see `scfi_faultsim`'s protocol
/// scenarios). The happy path is a strict 6-transition chain ending in
/// `DONE`, so corrupting any intermediate state derails every later step.
const SECURE_BOOT: &str = "
fsm secure_boot_fsm {
  inputs rom_digest_done, sig_valid, key_locked, ext_digest_done,
         ext_sig_valid, unlock_token, watchdog;
  outputs flash_exec_en, boot_done, boot_fail;
  reset ROM_MEASURE;
  state ROM_MEASURE   { if rom_digest_done -> ROM_VERIFY; if watchdog -> FAIL; }
  state ROM_VERIFY    { if sig_valid && key_locked -> EXT_MEASURE; if watchdog -> FAIL; }
  state EXT_MEASURE   { if ext_digest_done -> EXT_VERIFY; if watchdog -> FAIL; }
  state EXT_VERIFY    { if ext_sig_valid -> UNLOCK_FLASH; if watchdog -> FAIL; }
  state UNLOCK_FLASH  { if unlock_token -> EXEC; if watchdog -> FAIL; }
  state EXEC          { out flash_exec_en; goto DONE; }
  state DONE          { out flash_exec_en, boot_done; if watchdog -> FAIL; }
  state FAIL          { out boot_fail; goto FAIL; }
}";

/// All seven Table-1 benchmark FSMs, in the paper's row order.
pub fn all() -> Vec<BenchFsm> {
    vec![
        entry("adc_ctrl_fsm", 1019.0, ADC_CTRL),
        entry("aes_control", 632.0, AES_CONTROL),
        entry("i2c_fsm", 2729.0, I2C_FSM),
        entry("ibex_controller", 537.0, IBEX_CONTROLLER),
        entry("ibex_lsu", 933.0, IBEX_LSU),
        entry("otbn_controller", 2857.0, OTBN_CONTROLLER),
        entry("pwrmgr_fsm", 301.0, PWRMGR_FSM),
    ]
}

/// Looks up one benchmark FSM by its Table-1 name.
pub fn by_name(name: &str) -> Option<BenchFsm> {
    all().into_iter().find(|b| b.name == name)
}

fn entry(name: &'static str, paper_module_ge: f64, dsl: &str) -> BenchFsm {
    let fsm = parse_fsm(dsl)
        .unwrap_or_else(|e| panic!("built-in benchmark FSM {name} failed to parse: {e}"));
    BenchFsm {
        name,
        paper_module_ge,
        fsm,
    }
}

/// Convenience: the FSM the paper's formal analysis uses (§6.4): a machine
/// with 14 CFG transitions, protected at level 2. Returns the `aes_control`
/// FSM, whose CFG has exactly 14 edges (explicit + implicit stays).
pub fn synfi_formal_fsm() -> Fsm {
    by_name("aes_control").expect("suite entry").fsm
}

/// The secure-boot protocol FSM for multi-cycle campaigns (not a Table-1
/// row; see the `SECURE_BOOT` docs). Its happy path
/// `ROM_MEASURE → … → UNLOCK_FLASH → EXEC → DONE` is the walk the
/// `campaign_multicycle` bench and the mid-protocol conformance tests
/// attack.
pub fn secure_boot_fsm() -> Fsm {
    parse_fsm(SECURE_BOOT).expect("built-in secure-boot FSM parses")
}

/// The bundled multi-cycle protocol workloads — benchmark FSMs that are
/// *not* Table-1 rows but exist for protocol campaigns (currently just
/// [`secure_boot_fsm`]). Front ends should list and resolve these
/// generically rather than naming individual workloads, so additions here
/// surface everywhere at once.
pub fn protocol_workloads() -> Vec<Fsm> {
    vec![secure_boot_fsm()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfi_fsm::FsmSimulator;

    #[test]
    fn suite_has_table1_rows() {
        let suite = all();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec![
                "adc_ctrl_fsm",
                "aes_control",
                "i2c_fsm",
                "ibex_controller",
                "ibex_lsu",
                "otbn_controller",
                "pwrmgr_fsm"
            ]
        );
    }

    #[test]
    fn state_counts_match_real_modules_scale() {
        let expect = [
            ("adc_ctrl_fsm", 13),
            ("aes_control", 7),
            ("i2c_fsm", 30),
            ("ibex_controller", 9),
            ("ibex_lsu", 8),
            ("otbn_controller", 5),
            ("pwrmgr_fsm", 11),
        ];
        for (name, states) in expect {
            let b = by_name(name).unwrap();
            assert_eq!(b.fsm.state_count(), states, "{name}");
        }
    }

    #[test]
    fn no_unreachable_states_anywhere() {
        for b in all() {
            assert!(
                b.fsm.unreachable_states().is_empty(),
                "{} has unreachable states: {:?}",
                b.name,
                b.fsm
                    .unreachable_states()
                    .iter()
                    .map(|&s| b.fsm.state_name(s))
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn no_shadowed_transitions_anywhere() {
        for b in all() {
            assert!(
                b.fsm.shadowed_transitions().is_empty(),
                "{} has shadowed transitions: {:?}",
                b.name,
                b.fsm.shadowed_transitions()
            );
        }
    }

    #[test]
    fn paper_areas_match_table1() {
        let areas: Vec<f64> = all().iter().map(|b| b.paper_module_ge).collect();
        assert_eq!(
            areas,
            vec![1019.0, 632.0, 2729.0, 537.0, 933.0, 2857.0, 301.0]
        );
    }

    #[test]
    fn every_fsm_simulates_from_reset() {
        for b in all() {
            let mut sim = FsmSimulator::new(&b.fsm);
            let n = b.fsm.signals().len();
            // All-false inputs stay put or move; either way it must not panic
            // and must stay within the state space for 50 cycles.
            for i in 0..50 {
                let inputs: Vec<bool> = (0..n).map(|k| (i + k) % 3 == 0).collect();
                let s = sim.step(&inputs);
                assert!(s.0 < b.fsm.state_count());
            }
        }
    }

    #[test]
    fn synfi_fsm_has_14_cfg_edges() {
        let f = synfi_formal_fsm();
        assert_eq!(
            f.cfg().len(),
            14,
            "paper §6.4 uses an FSM with 14 transitions"
        );
    }

    #[test]
    fn by_name_unknown_is_none() {
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn secure_boot_happy_path_reaches_done() {
        let f = secure_boot_fsm();
        assert_eq!(f.state_count(), 8);
        let mut sim = FsmSimulator::new(&f);
        let sig = |name: &str| f.signals().iter().position(|s| s == name).expect("signal");
        let steps = [
            ("rom_digest_done", "ROM_VERIFY"),
            ("sig_valid", "EXT_MEASURE"), // key_locked asserted below
            ("ext_digest_done", "EXT_VERIFY"),
            ("ext_sig_valid", "UNLOCK_FLASH"),
            ("unlock_token", "EXEC"),
            ("rom_digest_done", "DONE"), // EXEC is unconditional
        ];
        for (signal, expect) in steps {
            let mut inputs = vec![false; f.signals().len()];
            inputs[sig(signal)] = true;
            inputs[sig("key_locked")] = true;
            sim.step(&inputs);
            assert_eq!(f.state_name(sim.state()), expect);
        }
    }

    #[test]
    fn secure_boot_fail_is_terminal_and_watchdog_guarded() {
        let f = secure_boot_fsm();
        let fail = f.state_by_name("FAIL").unwrap();
        let n = f.signals().len();
        for bits in 0..(1u32 << n) {
            let inputs: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(f.next_state(fail, &inputs), fail, "FAIL must be terminal");
        }
        let wd = f.signals().iter().position(|s| s == "watchdog").unwrap();
        let mut inputs = vec![false; n];
        inputs[wd] = true;
        for name in [
            "ROM_MEASURE",
            "ROM_VERIFY",
            "EXT_MEASURE",
            "EXT_VERIFY",
            "UNLOCK_FLASH",
        ] {
            let s = f.state_by_name(name).unwrap();
            assert_eq!(
                f.next_state(s, &inputs),
                fail,
                "{name} must honor the watchdog"
            );
        }
    }

    #[test]
    fn secure_boot_is_not_a_table1_row() {
        assert!(by_name("secure_boot_fsm").is_none());
        assert_eq!(all().len(), 7);
    }

    #[test]
    fn adc_ctrl_oneshot_walkthrough() {
        let b = by_name("adc_ctrl_fsm").unwrap();
        let f = &b.fsm;
        let mut sim = FsmSimulator::new(f);
        let sig = |name: &str| f.signals().iter().position(|s| s == name).expect("signal");
        let mut inputs = vec![false; f.signals().len()];
        inputs[sig("oneshot_mode")] = true;
        sim.step(&inputs);
        assert_eq!(f.state_name(sim.state()), "ONEST_PWRUP");
        let mut inputs = vec![false; f.signals().len()];
        inputs[sig("pwrup_done")] = true;
        sim.step(&inputs);
        assert_eq!(f.state_name(sim.state()), "ONEST_CH0");
    }

    #[test]
    fn otbn_locked_is_terminal() {
        let b = by_name("otbn_controller").unwrap();
        let f = &b.fsm;
        let locked = f.state_by_name("LOCKED").unwrap();
        for bits in 0..64u32 {
            let inputs: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(f.next_state(locked, &inputs), locked);
        }
    }
}
