//! Regenerates the **§6.4 formal security analysis**: exhaustive single
//! bit-flips into every gate of the MDS diffusion layer of a hardened FSM
//! with 14 CFG transitions at protection level 2.
//!
//! Paper result: 7644 injected faults, 32 (0.42 %) enable a control-flow
//! hijack. Our netlist and fault space differ in absolute size, but the
//! escape rate must stay well below 1 % and every escape must require
//! landing on a *valid* wrong codeword.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use scfi_bench::synfi_experiment;
use scfi_core::{harden, ScfiConfig};
use scfi_faultsim::{run_exhaustive, CampaignConfig, FaultEffect, ScfiTarget, UnprotectedTarget};
use scfi_fsm::lower_unprotected;

fn print_synfi() {
    let (hardened, report) = synfi_experiment();
    println!("\n=== §6.4 formal fault analysis (SYNFI-style) ===");
    println!(
        "target: {} ({} CFG transitions), protection level 2",
        hardened.fsm().name(),
        hardened.cfg().len()
    );
    println!(
        "fault space: exhaustive transient flips on outputs + input pins of the {} diffusion cells",
        hardened.regions().diffusion.len()
    );
    println!("result:  {report}");
    println!("paper:   7644 injections, 32 hijacks (0.42 % escape rate)");
    println!(
        "analytic success probability (paper formula): {:.3e}",
        scfi_faultsim::paper_success_probability(&hardened)
    );

    // Context: the same fault model against the whole protected module and
    // against the unprotected FSM.
    let full = run_exhaustive(
        &ScfiTarget::new(&hardened),
        &CampaignConfig::new().effects(vec![FaultEffect::Flip]),
    );
    println!("whole protected module, gate-output flips: {full}");
    let fsm = hardened.fsm().clone();
    let lowered = lower_unprotected(&fsm).expect("lowering");
    let unprot = run_exhaustive(
        &UnprotectedTarget::new(&fsm, &lowered),
        &CampaignConfig::new().effects(vec![FaultEffect::Flip]),
    );
    println!("unprotected FSM, same fault model:        {unprot}");
    println!(
        "protection factor: {:.0}x fewer escapes per injection\n",
        unprot.hijack_rate() / full.hijack_rate().max(1e-9)
    );
}

fn bench_campaign(c: &mut Criterion) {
    let fsm = scfi_opentitan::synfi_formal_fsm();
    let hardened = harden(&fsm, &ScfiConfig::new(2)).expect("harden");
    let mut group = c.benchmark_group("synfi");
    group.bench_function("diffusion_flip_campaign", |b| {
        b.iter(|| {
            run_exhaustive(
                &ScfiTarget::new(&hardened),
                &CampaignConfig::new()
                    .effects(vec![FaultEffect::Flip])
                    .region(hardened.regions().diffusion.clone()),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_campaign
}

fn main() {
    print_synfi();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
