//! Multi-cycle campaign throughput: the packed wave engine vs the scalar
//! reference on the secure-boot protocol workload — depth-4 CFG walks over
//! `secure_boot_fsm` (SCFI, protection level 2), every walk step glitched
//! transiently, exhaustive over gate-output flips plus register flips.
//!
//! Reported as injections/second (one injection = one fault group run
//! through one whole walk, i.e. four simulated cycles). Both engines run
//! the identical work list single-threaded, so the ratio is pure engine
//! speedup. CI runs this bench with `--test` (one iteration per payload,
//! no measurement loop), which also asserts the two engines agree on the
//! multi-cycle workload.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, run_exhaustive_scalar, CampaignConfig, CampaignReport, FaultTarget, ScfiTarget,
};

/// Walk depth: the secure-boot happy path is a 6-transition chain; depth 4
/// keeps the exhaustive product tractable while every scenario still rides
/// corrupted state across multiple edges.
const DEPTH: usize = 4;
const WALK_SEED: u64 = 0xB007_5EED;

fn hardened_boot() -> HardenedFsm {
    harden(&scfi_opentitan::secure_boot_fsm(), &ScfiConfig::new(2)).expect("harden")
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new().with_register_flips().threads(1)
}

fn print_throughput() {
    let hardened = hardened_boot();
    let target = ScfiTarget::with_protocol(&hardened, DEPTH, WALK_SEED);
    let config = campaign_config();
    let time = |f: &dyn Fn() -> CampaignReport| {
        let start = Instant::now();
        let report = f();
        (report, start.elapsed())
    };
    let (scalar_report, scalar_t) = time(&|| run_exhaustive_scalar(&target, &config));
    let (packed_report, packed_t) = time(&|| run_exhaustive(&target, &config));
    assert_eq!(
        scalar_report, packed_report,
        "engines disagree on the multi-cycle workload"
    );
    let rate = |r: &CampaignReport, t: Duration| r.injections as f64 / t.as_secs_f64();
    let scalar_rate = rate(&scalar_report, scalar_t);
    let packed_rate = rate(&packed_report, packed_t);
    println!(
        "\n=== multi-cycle campaign throughput (secure_boot_fsm, N=2, depth-{DEPTH} walks, 1 thread) ==="
    );
    println!(
        "protocol space: {} scenarios x faults = {} injections ({} cycles each)",
        target.scenario_count(),
        packed_report.injections,
        DEPTH
    );
    println!("result: {packed_report}");
    println!("scalar engine: {scalar_rate:>12.0} injections/s  ({scalar_t:.2?})");
    println!("packed engine: {packed_rate:>12.0} injections/s  ({packed_t:.2?})");
    println!("speedup:       {:>12.1}x\n", packed_rate / scalar_rate);
}

fn bench_engines(c: &mut Criterion) {
    let hardened = hardened_boot();
    let target = ScfiTarget::with_protocol(&hardened, DEPTH, WALK_SEED);
    let config = campaign_config();
    let mut group = c.benchmark_group("campaign_multicycle");
    group.bench_function("scalar_protocol_exhaustive", |b| {
        b.iter(|| run_exhaustive_scalar(&target, &config))
    });
    group.bench_function("packed_protocol_exhaustive", |b| {
        b.iter(|| run_exhaustive(&target, &config))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_engines
}

fn main() {
    print_throughput();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
