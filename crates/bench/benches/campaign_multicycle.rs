//! Multi-cycle campaign throughput: the packed wave engine at every lane
//! width (64/128/256 lanes) vs the scalar reference on the secure-boot
//! protocol workload — depth-4 CFG walks over `secure_boot_fsm` (SCFI,
//! protection level 2), every walk step glitched transiently, exhaustive
//! over gate-output flips plus register flips.
//!
//! Reported as injections/second (one injection = one fault group run
//! through one whole walk, i.e. up to four simulated cycles — the wave
//! executor's cycle skipping stops a wave early once every lane's verdict
//! is terminal, which is most of them on this detection-dominated
//! workload). All engines run the identical work list single-threaded, so
//! the ratios are pure engine speedup. CI runs this bench with `--test`
//! (one iteration per payload, no measurement loop), which also asserts
//! that every width reproduces the scalar report on the multi-cycle
//! workload.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, run_exhaustive_scalar, CampaignConfig, CampaignReport, FaultTarget, ScfiTarget,
};

/// Walk depth: the secure-boot happy path is a 6-transition chain; depth 4
/// keeps the exhaustive product tractable while every scenario still rides
/// corrupted state across multiple edges.
const DEPTH: usize = 4;
const WALK_SEED: u64 = 0xB007_5EED;

/// The packed wave widths under measurement, as lane words.
const LANE_WORDS: [usize; 3] = [1, 2, 4];

fn hardened_boot() -> HardenedFsm {
    harden(&scfi_opentitan::secure_boot_fsm(), &ScfiConfig::new(2)).expect("harden")
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new().with_register_flips().threads(1)
}

fn print_throughput() {
    let hardened = hardened_boot();
    let target = ScfiTarget::with_protocol(&hardened, DEPTH, WALK_SEED);
    let config = campaign_config();
    let time = |f: &dyn Fn() -> CampaignReport| {
        let start = Instant::now();
        let report = f();
        (report, start.elapsed())
    };
    let rate = |r: &CampaignReport, t: Duration| r.injections as f64 / t.as_secs_f64();
    let (scalar_report, scalar_t) = time(&|| run_exhaustive_scalar(&target, &config));
    let scalar_rate = rate(&scalar_report, scalar_t);
    println!(
        "\n=== multi-cycle campaign throughput (secure_boot_fsm, N=2, depth-{DEPTH} walks, 1 thread) ==="
    );
    println!(
        "protocol space: {} scenarios x faults = {} injections ({} cycles each)",
        target.scenario_count(),
        scalar_report.injections,
        DEPTH
    );
    println!("result: {scalar_report}");
    println!("scalar reference: {scalar_rate:>12.0} injections/s  ({scalar_t:.2?})");
    for w in LANE_WORDS {
        let config = config.clone().lane_words(w);
        let (packed_report, packed_t) = time(&|| run_exhaustive(&target, &config));
        assert_eq!(
            packed_report, scalar_report,
            "engines disagree at W={w} on the multi-cycle workload"
        );
        let packed_rate = rate(&packed_report, packed_t);
        println!(
            "packed {:>3}-lane:  {packed_rate:>12.0} injections/s  ({packed_t:.2?})  {:>6.1}x scalar",
            64 * w,
            packed_rate / scalar_rate
        );
    }
    println!();
}

fn bench_engines(c: &mut Criterion) {
    let hardened = hardened_boot();
    let target = ScfiTarget::with_protocol(&hardened, DEPTH, WALK_SEED);
    let config = campaign_config();
    let mut group = c.benchmark_group("campaign_multicycle");
    group.bench_function("scalar_protocol_exhaustive", |b| {
        b.iter(|| run_exhaustive_scalar(&target, &config))
    });
    for w in LANE_WORDS {
        let config = config.clone().lane_words(w);
        group.bench_function(format!("packed_protocol_exhaustive_{}lanes", 64 * w), |b| {
            b.iter(|| run_exhaustive(&target, &config))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_engines
}

fn main() {
    print_throughput();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
