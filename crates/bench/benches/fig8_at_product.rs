//! Regenerates **Figure 8** of the SCFI paper: the area–time product of the
//! `adc_ctrl_fsm` module for the unprotected base design, redundancy N=3,
//! and SCFI N=3, sweeping the target clock period from 3200 ps to 6000 ps.
//!
//! Also reports the §6.2 headline: the maximum frequency each configuration
//! can reach (paper: base 312 MHz, redundancy 308 MHz, SCFI 294 MHz on a
//! proprietary library — ours differ in absolute value, not in ordering)
//! and whether every configuration meets OpenTitan's 125 MHz target.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use scfi_bench::at_sweep;
use scfi_core::{harden, ScfiConfig};
use scfi_fsm::lower_unprotected;
use scfi_stdcell::Library;

fn print_fig8() {
    let bench = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite entry");
    let periods: Vec<f64> = (0..=10).map(|i| 3200.0 + 280.0 * i as f64).collect();

    println!("\n=== Figure 8: area-time product, adc_ctrl_fsm ===");
    println!("clock_period_ps, base_kGE, redundancy_n3_kGE, scfi_n3_kGE");
    let base = at_sweep(&bench, None, &periods);
    let red = at_sweep(&bench, Some((3, true)), &periods);
    let scfi = at_sweep(&bench, Some((3, false)), &periods);
    for ((b, r), s) in base.iter().zip(&red).zip(&scfi) {
        let cell = |p: &scfi_bench::AtPoint| {
            if p.met {
                format!("{:.3}", p.area_kge)
            } else {
                format!("{:.3}*", p.area_kge)
            }
        };
        println!(
            "{:>6.0}, {:>8}, {:>8}, {:>8}",
            b.period_ps,
            cell(b),
            cell(r),
            cell(s)
        );
    }
    println!("(* = target period not met at maximum drive)");

    // §6.2: maximum frequency per configuration (minimum-period sizing).
    let lib = Library::nangate45_like();
    let unprot = lower_unprotected(&bench.fsm).expect("lowering");
    let red3 = scfi_core::redundancy(&bench.fsm, 3).expect("redundancy");
    let scfi3 = harden(&bench.fsm, &ScfiConfig::new(3)).expect("harden");
    println!("\nMaximum frequency (fully upsized critical path):");
    for (name, module) in [
        ("base", unprot.module()),
        ("redundancy N=3", red3.module()),
        ("SCFI N=3", scfi3.module()),
    ] {
        let mut mapped = lib.map(module);
        let r = mapped.size_for_period(1.0); // impossible target → best effort
        let mhz = 1.0e6 / r.period_ps;
        let meets_125 = r.period_ps <= 8000.0;
        println!(
            "  {name:<15} {mhz:>7.1} MHz (min period {:.0} ps, meets 125 MHz: {meets_125})",
            r.period_ps
        );
    }
    println!("(paper: base 312 MHz, redundancy 308 MHz, SCFI 294 MHz; all meet 125 MHz)\n");
}

fn bench_sizing(c: &mut Criterion) {
    let bench = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite entry");
    let lib = Library::nangate45_like();
    let scfi3 = harden(&bench.fsm, &ScfiConfig::new(3)).expect("harden");
    let mut group = c.benchmark_group("fig8");
    group.bench_function("size_scfi_n3_for_4000ps", |b| {
        b.iter(|| {
            let mut mapped = lib.map(scfi3.module());
            mapped.size_for_period(4000.0)
        })
    });
    group.bench_function("sta_min_period", |b| {
        let mapped = lib.map(scfi3.module());
        b.iter(|| mapped.min_period_ps())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_sizing
}

fn main() {
    print_fig8();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
