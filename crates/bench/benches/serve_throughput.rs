//! `scfi serve` end-to-end job throughput: how many complete analyze
//! jobs per second the HTTP server delivers — submission, queueing,
//! campaign, result retrieval — against the direct in-process rate for
//! the identical experiment.
//!
//! The workload is the warm-cache steady state (analyze `aes_control` at
//! N = 3 on the packed backend): the first submission compiles and
//! populates the model cache, every following job reuses the compiled
//! netlist. Three rates are measured: `direct` (the engine called
//! in-process, the ceiling), `serial` (one HTTP client at a time) and
//! `concurrent` (4 clients against the 2-worker pool).
//!
//! The committed baseline lives in `BENCH_serve.json` at the workspace
//! root; regenerate with `cargo bench --bench serve_throughput -- --save`.
//!
//! CI runs this bench with `--test`: every served result is asserted
//! byte-identical to the direct run, the cache counters must show
//! exactly one miss (everything else hits), and the serial served rate
//! must stay above half the committed baseline. Since the accept loop
//! blocks in `accept(2)` and the workers park on a condvar (no fixed
//! poll sleeps anywhere on the request path), the serial rate tracks
//! actual HTTP + queueing latency — the per-endpoint request-latency
//! histograms scraped from `/v1/metrics` are printed alongside the
//! rates to show where the round-trip time goes.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_faultsim::RunControl;
use scfi_serve::cache::prepare;
use scfi_serve::jobs::{run_job, JobOutcome, JobSpec};
use scfi_serve::json::parse;
use scfi_serve::{Server, ServerOptions};

/// The benchmarked job: a warm-cache analyze on a mid-size Table-1 FSM.
const JOB: &str = r#"{"kind": "analyze", "suite": "aes_control", "level": 3}"#;

/// Jobs per measured batch.
const BATCH: usize = 8;

/// Concurrent client threads in the `concurrent` point.
const CLIENTS: usize = 4;

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn save_mode() -> bool {
    std::env::args().any(|a| a == "--save")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

// -------------------------------------------------------------------
// Minimal blocking HTTP client (the bench speaks to the server exactly
// like an external client: raw TCP, one request per connection).
// -------------------------------------------------------------------

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let raw = String::from_utf8(raw).expect("UTF-8 response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (status, body.to_string())
}

/// Submits one job and blocks until its result is served, returning the
/// result bytes.
fn served_job(addr: SocketAddr) -> String {
    let (status, body) = http(addr, "POST", "/v1/jobs", JOB);
    assert_eq!(status, 202, "submit: {body}");
    let id = parse(&body)
        .expect("submit reply")
        .get("id")
        .and_then(|v| v.as_u64())
        .expect("job id");
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}"), "");
        assert_eq!(status, 200, "{body}");
        let state = parse(&body)
            .expect("status reply")
            .get("status")
            .and_then(|v| v.as_str().map(str::to_string))
            .expect("status string");
        match state.as_str() {
            "done" => break,
            "queued" | "running" => {
                assert!(Instant::now() < deadline, "job {id} stuck in {state}");
                std::thread::sleep(Duration::from_millis(1));
            }
            other => panic!("job {id} ended as `{other}`: {body}"),
        }
    }
    let (status, body) = http(addr, "GET", &format!("/v1/jobs/{id}/result"), "");
    assert_eq!(status, 200, "{body}");
    body
}

struct Metrics {
    direct_jobs_per_s: f64,
    serial_jobs_per_s: f64,
    concurrent_jobs_per_s: f64,
    /// `serial ÷ direct` — the machine-independent overhead gate.
    overhead_ratio: f64,
}

fn measure() -> (Metrics, Server) {
    // Direct in-process ceiling: same spec, same prepared model reuse as
    // the server's warm path, no HTTP and no queue.
    let spec = JobSpec::from_json(&parse(JOB).expect("job body")).expect("valid job");
    let prepared = prepare(&spec.fsm, spec.config, spec.level).expect("prepare");
    let telemetry = scfi_telemetry::Telemetry::off();
    let direct_body = match run_job(&spec, &prepared, &RunControl::unlimited(), &telemetry) {
        JobOutcome::Done { body, .. } => body,
        _ => panic!("direct warm-up run did not complete"),
    };
    let start = Instant::now();
    for _ in 0..BATCH {
        match run_job(&spec, &prepared, &RunControl::unlimited(), &telemetry) {
            JobOutcome::Done { .. } => {}
            _ => panic!("direct run did not complete"),
        }
    }
    let direct_jobs_per_s = BATCH as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Cold submission: compiles once, populates the cache.
    let cold = served_job(addr);
    assert_eq!(
        cold, direct_body,
        "served result diverged from the direct run"
    );

    // Warm serial rate.
    let start = Instant::now();
    for _ in 0..BATCH {
        let body = served_job(addr);
        assert_eq!(body, direct_body, "warm served result diverged");
    }
    let serial_jobs_per_s = BATCH as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // Warm concurrent rate: CLIENTS threads, BATCH jobs each.
    let start = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..BATCH {
                    served_job(addr);
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("client thread");
    }
    let concurrent_jobs_per_s = (CLIENTS * BATCH) as f64 / start.elapsed().as_secs_f64().max(1e-9);

    // The model compiled exactly once; every other lookup hit.
    let (status, health) = http(addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    let doc = parse(&health).expect("healthz");
    let cache = doc.get("cache").expect("cache section");
    assert_eq!(cache.get("misses").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(
        cache.get("hits").and_then(|v| v.as_u64()),
        Some((1 + BATCH + CLIENTS * BATCH) as u64 - 1),
        "every warm job must hit the compile cache"
    );

    let metrics = Metrics {
        direct_jobs_per_s,
        serial_jobs_per_s,
        concurrent_jobs_per_s,
        overhead_ratio: serial_jobs_per_s / direct_jobs_per_s.max(1e-9),
    };
    println!("\n=== scfi serve throughput (warm cache, analyze aes_control N=3) ===");
    println!("direct      {:>10.1} jobs/s", metrics.direct_jobs_per_s);
    println!(
        "serial      {:>10.1} jobs/s  (overhead ratio {:.3})",
        metrics.serial_jobs_per_s, metrics.overhead_ratio
    );
    println!(
        "concurrent  {:>10.1} jobs/s  ({CLIENTS} clients, 2 workers)",
        metrics.concurrent_jobs_per_s
    );

    // Per-endpoint request latency from the server's own histograms:
    // with a blocking accept and condvar-signalled workers the mean
    // round-trip is pure HTTP + dispatch work, not poll-interval sleep.
    let (status, exposition) = http(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200, "{exposition}");
    for endpoint in ["submit", "status", "result"] {
        let mean_us = histogram_mean_us(&exposition, &format!("scfi_serve_request_{endpoint}_ns"));
        println!("request latency  {endpoint:<7} mean {mean_us:>8.1} us");
    }
    let queue_wait_us = histogram_mean_us(&exposition, "scfi_serve_queue_wait_ns");
    println!("queue wait               mean {queue_wait_us:>8.1} us\n");
    (metrics, server)
}

/// Mean observation of a telemetry histogram, in microseconds, read from
/// the Prometheus exposition's `_sum` / `_count` series.
fn histogram_mean_us(exposition: &str, name: &str) -> f64 {
    let series = |suffix: &str| -> f64 {
        let key = format!("{name}{suffix} ");
        exposition
            .lines()
            .find(|l| l.starts_with(&key))
            .and_then(|l| l.rsplit(' ').next()?.parse().ok())
            .unwrap_or_else(|| panic!("/v1/metrics is missing series {name}{suffix}"))
    };
    let count = series("_count");
    if count == 0.0 {
        return 0.0;
    }
    series("_sum") / count / 1_000.0
}

fn write_baseline(m: &Metrics) {
    let json = format!(
        "{{\n  \"workload\": \"analyze aes_control N=3, packed backend, warm compile cache, 2 workers\",\n  \
           \"direct_jobs_per_s\": {:.1},\n  \
           \"serial_jobs_per_s\": {:.1},\n  \
           \"concurrent_jobs_per_s\": {:.1},\n  \
           \"serve_overhead_ratio\": {:.4}\n}}\n",
        m.direct_jobs_per_s, m.serial_jobs_per_s, m.concurrent_jobs_per_s, m.overhead_ratio
    );
    let path = baseline_path();
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("baseline written to {}", path.display());
}

fn baseline_serial_rate(text: &str) -> f64 {
    text.lines()
        .find(|l| l.contains("\"serial_jobs_per_s\""))
        .and_then(|l| {
            l.split(':')
                .nth(1)?
                .trim()
                .trim_end_matches([',', '}'])
                .trim()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| {
            panic!(
                "BENCH_serve.json has no serial_jobs_per_s key; regenerate \
                 with `cargo bench --bench serve_throughput -- --save`"
            )
        })
}

fn check_against_baseline(m: &Metrics) {
    let path = baseline_path();
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing baseline {} ({e}); regenerate with \
             `cargo bench --bench serve_throughput -- --save`",
            path.display()
        )
    });
    let baseline = baseline_serial_rate(&text);
    let floor = 0.5 * baseline;
    println!(
        "serial served rate {:.1} jobs/s vs baseline {baseline:.1} (floor {floor:.1})",
        m.serial_jobs_per_s
    );
    assert!(
        m.serial_jobs_per_s >= floor,
        "serving latency regressed: serial rate {:.1} jobs/s fell below half \
         the committed baseline {baseline:.1}; investigate the HTTP/queue path, \
         or regenerate BENCH_serve.json with \
         `cargo bench --bench serve_throughput -- --save` if intentional",
        m.serial_jobs_per_s
    );
}

fn bench_serve(c: &mut Criterion) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions {
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let _warm = served_job(addr);
    let mut group = c.benchmark_group("serve");
    group.bench_function("warm_job_roundtrip_aes_n3", |b| b.iter(|| served_job(addr)));
    group.finish();
    drop(server);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_serve
}

fn main() {
    let (metrics, server) = measure();
    drop(server);
    if save_mode() {
        write_baseline(&metrics);
        return;
    }
    if test_mode() {
        check_against_baseline(&metrics);
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
