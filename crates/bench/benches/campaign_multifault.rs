//! Multi-fault temporal-attacker throughput: injections/second for the
//! §3 attacker's full campaign shape — M simultaneous faults per draw,
//! each armed on its **own** sampled transient window
//! (`with_fault_windows`), over adversarially **fuzzed** multi-cycle
//! protocol walks — on every campaign backend (scalar, packed at
//! W ∈ {1, 2, 4}, the 512-lane SIMD wave).
//!
//! This is the workload the per-fault `FaultSchedule` refactor must keep
//! fast: every lane of a wave can arm and re-arm at a different cycle,
//! so the word-parallel executor rebuilds fault masks only when some
//! live lane's window actually moves (re-arm elision) instead of every
//! cycle.
//!
//! The committed baseline lives in `BENCH_multifault.json` at the
//! workspace root; regenerate it with
//! `cargo bench --bench campaign_multifault -- --save`.
//!
//! CI runs this bench with `--test`: every grid point then runs on every
//! backend with byte-identical `CampaignReport`s asserted, and each
//! backend's geometric-mean speedup over the scalar reference is
//! compared against the committed baseline — a drop below 0.8× the
//! baseline speedup fails CI.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{run_multi_fault, Backend, CampaignConfig, CampaignReport, ScfiTarget};

/// Small and medium Table-1 rows; the grid is throughput-bound, not
/// coverage-bound, so two FSMs × two levels keep `--test` mode fast.
const FSMS: [&str; 2] = ["aes_control", "adc_ctrl_fsm"];
const LEVELS: [usize; 2] = [2, 3];

/// Simultaneous faults per draw and sampled draws per campaign.
const M: usize = 3;
const RUNS: usize = 6000;

/// Fuzzed protocol walk depth (windows are sampled per fault in 0..DEPTH).
const DEPTH: usize = 4;

/// The measured backend column: display name, backend, packed lane words.
const COLUMNS: [(&str, Backend, usize); 5] = [
    ("scalar", Backend::Scalar, 4),
    ("packed-64", Backend::Packed, 1),
    ("packed-128", Backend::Packed, 2),
    ("packed-256", Backend::Packed, 4),
    ("simd-512", Backend::Simd, 4),
];

fn hardened(name: &str, n: usize) -> HardenedFsm {
    let b = scfi_opentitan::by_name(name).expect("suite entry");
    harden(&b.fsm, &ScfiConfig::new(n)).expect("harden")
}

fn config(backend: Backend, lane_words: usize) -> CampaignConfig {
    CampaignConfig::new()
        .with_register_flips()
        .with_fault_windows()
        .threads(1)
        .lane_words(lane_words)
        .backend(backend)
}

/// `true` when the bench binary runs in CI's `--test` mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// `true` when invoked with `--save` (rewrite `BENCH_multifault.json`).
fn save_mode() -> bool {
    std::env::args().any(|a| a == "--save")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_multifault.json")
}

/// One measured grid point.
struct Point {
    fsm: &'static str,
    level: usize,
    column: &'static str,
    inj_per_s: f64,
    speedup: f64,
}

fn run_point(target: &ScfiTarget<'_>, cfg: &CampaignConfig) -> (CampaignReport, f64) {
    let start = Instant::now();
    let report = run_multi_fault(target, M, RUNS, cfg);
    let rate = report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (report, rate)
}

fn measure_grid() -> Vec<Point> {
    let mut points = Vec::new();
    println!(
        "\n=== multi-fault campaigns (M={M}, {RUNS} draws, per-fault windows, \
         depth-{DEPTH} fuzzed walks, 1 thread) ==="
    );
    println!(
        "{:<14} {:>2} {:>10}  {}",
        "fsm",
        "N",
        "inject",
        COLUMNS
            .iter()
            .map(|(name, _, _)| format!("{name:>12}"))
            .collect::<String>()
    );
    for name in FSMS {
        for n in LEVELS {
            let h = hardened(name, n);
            let target = ScfiTarget::with_fuzzed_protocol(&h, DEPTH, 0x5CF1_F022);
            let mut reference: Option<CampaignReport> = None;
            let mut scalar_rate = 0.0;
            let mut row = String::new();
            for (column, backend, lane_words) in COLUMNS {
                let (report, rate) = run_point(&target, &config(backend, lane_words));
                match &reference {
                    None => reference = Some(report),
                    Some(reference) => {
                        // The multi-window draw stream and classification
                        // must be backend-invariant, injection for
                        // injection.
                        assert_eq!(
                            &report, reference,
                            "{name} N={n}: {column} diverged from the scalar reference"
                        );
                    }
                }
                if column == "scalar" {
                    scalar_rate = rate;
                }
                let speedup = rate / scalar_rate.max(1e-9);
                row.push_str(&format!("{rate:>12.0}"));
                points.push(Point {
                    fsm: name,
                    level: n,
                    column,
                    inj_per_s: rate,
                    speedup,
                });
            }
            let injections = reference.as_ref().map_or(0, |r| r.injections);
            println!("{name:<14} {n:>2} {injections:>10}  {row}  (inj/s)");
        }
    }
    println!();
    points
}

/// Geometric-mean speedup over the grid for one backend column.
fn geomean_speedup(points: &[Point], column: &str) -> f64 {
    let logs: Vec<f64> = points
        .iter()
        .filter(|p| p.column == column)
        .map(|p| p.speedup.max(1e-9).ln())
        .collect();
    (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp()
}

fn write_baseline(points: &[Point]) {
    let mut json = String::from(
        "{\n  \"grid\": \"Table-1 {aes_control, adc_ctrl_fsm} x N in {2,3}, M=3 faults \
         with per-fault windows, depth-4 fuzzed protocol walks, 1 thread\",\n  \"points\": [\n",
    );
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fsm\": \"{}\", \"level\": {}, \"backend\": \"{}\", \"inj_per_s\": {:.0}, \"speedup_vs_scalar\": {:.2}}}{}\n",
            p.fsm,
            p.level,
            p.column,
            p.inj_per_s,
            p.speedup,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = baseline_path();
    std::fs::write(&path, json).expect("write BENCH_multifault.json");
    println!("baseline written to {}", path.display());
}

/// Pulls `"speedup_vs_scalar": X` values for one backend out of the
/// committed baseline (minimal scan; the file is produced by
/// `write_baseline`, so the shape is fixed).
fn baseline_speedups(text: &str, column: &str) -> Vec<f64> {
    let needle = format!("\"backend\": \"{column}\"");
    text.lines()
        .filter(|l| l.contains(&needle))
        .filter_map(|l| {
            let v = l.split("\"speedup_vs_scalar\":").nth(1)?;
            v.trim()
                .trim_end_matches(['}', ',', ']'])
                .trim_end_matches('}')
                .trim()
                .parse()
                .ok()
        })
        .collect()
}

fn check_against_baseline(points: &[Point]) {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => panic!(
            "missing baseline {} ({e}); regenerate with \
             `cargo bench --bench campaign_multifault -- --save`",
            path.display()
        ),
    };
    for (column, _, _) in COLUMNS.iter().skip(1) {
        let speedups = baseline_speedups(&text, column);
        assert!(
            !speedups.is_empty(),
            "baseline has no points for backend {column}"
        );
        let logs: f64 = speedups.iter().map(|s| s.max(1e-9).ln()).sum();
        let baseline = (logs / speedups.len() as f64).exp();
        let measured = geomean_speedup(points, column);
        println!(
            "{column:>12}: geomean speedup {measured:.2}x vs baseline {baseline:.2}x (floor {:.2}x)",
            0.8 * baseline
        );
        assert!(
            measured >= 0.8 * baseline,
            "{column}: geomean speedup {measured:.2}x regressed more than 20% below the \
             committed baseline {baseline:.2}x; investigate, or regenerate \
             BENCH_multifault.json with `cargo bench --bench campaign_multifault -- --save` \
             if the change is intentional"
        );
    }
}

fn bench_multifault(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_multifault");
    let h = hardened("adc_ctrl_fsm", 3);
    let target = ScfiTarget::with_fuzzed_protocol(&h, DEPTH, 0x5CF1_F022);
    for (column, backend, lane_words) in COLUMNS {
        let cfg = config(backend, lane_words);
        group.bench_function(format!("multifault_adc_ctrl_n3_{column}"), |b| {
            b.iter(|| run_multi_fault(&target, M, RUNS, &cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_multifault
}

fn main() {
    let points = measure_grid();
    if save_mode() {
        write_baseline(&points);
        return;
    }
    if test_mode() {
        check_against_baseline(&points);
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
