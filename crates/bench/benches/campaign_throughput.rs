//! Campaign-engine throughput: scalar reference vs 64-lane packed engine
//! on the `adc_ctrl_fsm` exhaustive gate-output-flip campaign (protection
//! level 2), reported as injections/second.
//!
//! Both engines run the identical work list single-threaded, so the ratio
//! is pure engine speedup — no parallelism in the numerator. CI runs this
//! bench with `--test` (one iteration per payload, no measurement loop) so
//! the target cannot rot; the README records the measured speedup.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, run_exhaustive_scalar, CampaignConfig, CampaignReport, ScfiTarget,
};

fn hardened_adc() -> HardenedFsm {
    let bench = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite entry");
    harden(&bench.fsm, &ScfiConfig::new(2)).expect("harden")
}

fn single_thread_config() -> CampaignConfig {
    CampaignConfig::new().threads(1)
}

fn print_throughput() {
    let hardened = hardened_adc();
    let target = ScfiTarget::new(&hardened);
    let config = single_thread_config();
    let time = |f: &dyn Fn() -> CampaignReport| {
        let start = Instant::now();
        let report = f();
        (report, start.elapsed())
    };
    let (scalar_report, scalar_t) = time(&|| run_exhaustive_scalar(&target, &config));
    let (packed_report, packed_t) = time(&|| run_exhaustive(&target, &config));
    assert_eq!(
        (
            scalar_report.injections,
            scalar_report.masked,
            scalar_report.detected,
            scalar_report.hijacked
        ),
        (
            packed_report.injections,
            packed_report.masked,
            packed_report.detected,
            packed_report.hijacked
        ),
        "engines disagree"
    );
    let rate = |r: &CampaignReport, t: Duration| r.injections as f64 / t.as_secs_f64();
    let scalar_rate = rate(&scalar_report, scalar_t);
    let packed_rate = rate(&packed_report, packed_t);
    println!(
        "\n=== campaign engine throughput (adc_ctrl_fsm, N=2, exhaustive flips, 1 thread) ==="
    );
    println!(
        "fault space: {} injections over {} cells",
        scalar_report.injections,
        hardened.module().len()
    );
    println!("scalar engine: {scalar_rate:>12.0} injections/s  ({scalar_t:.2?})");
    println!("packed engine: {packed_rate:>12.0} injections/s  ({packed_t:.2?})");
    println!("speedup:       {:>12.1}x\n", packed_rate / scalar_rate);
}

fn bench_engines(c: &mut Criterion) {
    let hardened = hardened_adc();
    let target = ScfiTarget::new(&hardened);
    let config = single_thread_config();
    let mut group = c.benchmark_group("campaign_throughput");
    group.bench_function("scalar_exhaustive", |b| {
        b.iter(|| run_exhaustive_scalar(&target, &config))
    });
    group.bench_function("packed_exhaustive", |b| {
        b.iter(|| run_exhaustive(&target, &config))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_engines
}

fn main() {
    print_throughput();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
