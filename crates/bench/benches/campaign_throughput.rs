//! Campaign-engine throughput: scalar reference vs the packed wave engine
//! at every lane width (64/128/256 lanes) on the `adc_ctrl_fsm`
//! exhaustive gate-output-flip campaign (protection level 2), reported as
//! injections/second.
//!
//! All engines run the identical work list single-threaded, so the ratios
//! are pure engine speedup — no parallelism in the numerator. CI runs
//! this bench with `--test` (one iteration per payload, no measurement
//! loop), which also asserts that every width reproduces the scalar
//! report; the README records the measured speedups.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, run_exhaustive_scalar, Backend, CampaignConfig, CampaignReport, ScfiTarget,
};

/// The packed wave widths under measurement, as lane words.
const LANE_WORDS: [usize; 3] = [1, 2, 4];

fn hardened_adc() -> HardenedFsm {
    let bench = scfi_opentitan::by_name("adc_ctrl_fsm").expect("suite entry");
    harden(&bench.fsm, &ScfiConfig::new(2)).expect("harden")
}

fn single_thread_config() -> CampaignConfig {
    CampaignConfig::new().threads(1)
}

fn print_throughput() {
    let hardened = hardened_adc();
    let target = ScfiTarget::new(&hardened);
    let config = single_thread_config();
    let time = |f: &dyn Fn() -> CampaignReport| {
        let start = Instant::now();
        let report = f();
        (report, start.elapsed())
    };
    let rate = |r: &CampaignReport, t: Duration| r.injections as f64 / t.as_secs_f64();
    let (scalar_report, scalar_t) = time(&|| run_exhaustive_scalar(&target, &config));
    let scalar_rate = rate(&scalar_report, scalar_t);
    println!(
        "\n=== campaign engine throughput (adc_ctrl_fsm, N=2, exhaustive flips, 1 thread) ==="
    );
    println!(
        "fault space: {} injections over {} cells",
        scalar_report.injections,
        hardened.module().len()
    );
    println!("scalar reference: {scalar_rate:>12.0} injections/s  ({scalar_t:.2?})");
    for w in LANE_WORDS {
        let config = config.clone().lane_words(w);
        let (packed_report, packed_t) = time(&|| run_exhaustive(&target, &config));
        assert_eq!(
            packed_report, scalar_report,
            "engines disagree at W={w}: the packed report must be byte-identical"
        );
        let packed_rate = rate(&packed_report, packed_t);
        println!(
            "packed {:>3}-lane:  {packed_rate:>12.0} injections/s  ({packed_t:.2?})  {:>6.1}x scalar",
            64 * w,
            packed_rate / scalar_rate
        );
    }
    let simd_config = config.clone().backend(Backend::Simd);
    let (simd_report, simd_t) = time(&|| run_exhaustive(&target, &simd_config));
    assert_eq!(
        simd_report, scalar_report,
        "engines disagree: the simd report must be byte-identical"
    );
    let simd_rate = rate(&simd_report, simd_t);
    println!(
        "simd   512-lane:  {simd_rate:>12.0} injections/s  ({simd_t:.2?})  {:>6.1}x scalar",
        simd_rate / scalar_rate
    );
    println!();
}

fn bench_engines(c: &mut Criterion) {
    let hardened = hardened_adc();
    let target = ScfiTarget::new(&hardened);
    let config = single_thread_config();
    let mut group = c.benchmark_group("campaign_throughput");
    group.bench_function("scalar_exhaustive", |b| {
        b.iter(|| run_exhaustive_scalar(&target, &config))
    });
    for w in LANE_WORDS {
        let config = config.clone().lane_words(w);
        group.bench_function(format!("packed_exhaustive_{}lanes", 64 * w), |b| {
            b.iter(|| run_exhaustive(&target, &config))
        });
    }
    let simd_config = config.clone().backend(Backend::Simd);
    group.bench_function("simd_exhaustive_512lanes", |b| {
        b.iter(|| run_exhaustive(&target, &simd_config))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_engines
}

fn main() {
    print_throughput();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
