//! Campaign-backend throughput matrix: injections/second for every
//! [`CampaignBackend`](scfi_faultsim::CampaignBackend) — scalar, packed at
//! W ∈ {1, 2, 4} (64/128/256 lanes) and the fixed 512-lane SIMD wave —
//! over the scale-sweep grid (N ∈ {2, 3, 4} × {small, medium, large}
//! Table-1 FSMs, exhaustive gate-output flips + register flips, one
//! thread), plus a scenario-dense depth-1 protocol point that stresses
//! per-wave scenario resolution (many distinct scenarios, few faults
//! each — the workload where the wave executor's scenario lookup used to
//! scan linearly).
//!
//! The committed baseline lives in `BENCH_backends.json` at the workspace
//! root; regenerate it with `cargo bench --bench backends -- --save`.
//!
//! CI runs this bench with `--test`: every grid point then runs on every
//! backend with byte-identical `CampaignReport`s asserted (cross-backend
//! divergence fails CI), and each backend's geometric-mean speedup over
//! the scalar reference is compared against the committed baseline — a
//! drop below 0.8× the baseline speedup (a >20 % relative regression)
//! fails CI. Test mode also pins two hot-path overhead budgets on the
//! exhaustive W=4 row: running under an armed-but-never-tripping
//! [`RunControl`] must stay within the baseline's
//! `control_overhead_budget` fraction of the uncontrolled throughput,
//! and running with a recording [`Telemetry`] handle installed must
//! stay within `telemetry_overhead_budget` of the uninstrumented
//! throughput.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{
    run_exhaustive, try_run_exhaustive, Backend, CampaignConfig, CampaignReport, FaultTarget,
    FaultTiming, ProtocolScenario, RunControl, ScfiTarget,
};
use scfi_telemetry::Telemetry;

/// Small / medium / large rows of Table 1 (7, 13 and 30 states).
const FSMS: [&str; 3] = ["aes_control", "adc_ctrl_fsm", "i2c_fsm"];
const LEVELS: [usize; 3] = [2, 3, 4];

/// The measured backend column: display name, backend, packed lane words.
const COLUMNS: [(&str, Backend, usize); 5] = [
    ("scalar", Backend::Scalar, 4),
    ("packed-64", Backend::Packed, 1),
    ("packed-128", Backend::Packed, 2),
    ("packed-256", Backend::Packed, 4),
    ("simd-512", Backend::Simd, 4),
];

fn hardened(name: &str, n: usize) -> HardenedFsm {
    let b = scfi_opentitan::by_name(name).expect("suite entry");
    harden(&b.fsm, &ScfiConfig::new(n)).expect("harden")
}

fn config(backend: Backend, lane_words: usize) -> CampaignConfig {
    CampaignConfig::new()
        .with_register_flips()
        .threads(1)
        .lane_words(lane_words)
        .backend(backend)
}

/// `true` when the bench binary runs in CI's `--test` mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// `true` when invoked with `--save` (rewrite `BENCH_backends.json`).
fn save_mode() -> bool {
    std::env::args().any(|a| a == "--save")
}

fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_backends.json")
}

/// One measured grid point.
struct Point {
    fsm: &'static str,
    level: usize,
    column: &'static str,
    inj_per_s: f64,
    speedup: f64,
}

fn run_point(target: &ScfiTarget<'_>, cfg: &CampaignConfig) -> (CampaignReport, f64) {
    let start = Instant::now();
    let report = run_exhaustive(target, cfg);
    let rate = report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (report, rate)
}

/// The satellite workload: one depth-1 transient scenario per CFG edge —
/// the maximally scenario-dense protocol campaign, with register-flip
/// faults only so each wave spans many distinct scenarios.
fn scenario_dense_target(h: &HardenedFsm) -> ScfiTarget<'_> {
    let scenarios = (0..h.cfg().edges().len())
        .map(|ei| ProtocolScenario::uniform(vec![ei], FaultTiming::Transient(0)))
        .collect();
    ScfiTarget::with_scenarios(h, scenarios)
}

fn measure_grid() -> Vec<Point> {
    let cross_check = test_mode();
    let mut points = Vec::new();
    println!("\n=== campaign backends (exhaustive flips + register flips, 1 thread) ===");
    println!(
        "{:<14} {:>2} {:>10}  {}",
        "fsm",
        "N",
        "inject",
        COLUMNS
            .iter()
            .map(|(name, _, _)| format!("{name:>12}"))
            .collect::<String>()
    );
    for name in FSMS {
        for n in LEVELS {
            let h = hardened(name, n);
            let target = ScfiTarget::new(&h);
            let mut reference: Option<CampaignReport> = None;
            let mut scalar_rate = 0.0;
            let mut row = String::new();
            for (column, backend, lane_words) in COLUMNS {
                let (report, rate) = run_point(&target, &config(backend, lane_words));
                match &reference {
                    None => reference = Some(report),
                    Some(reference) => {
                        // Byte-identical reports across backends is the
                        // backend contract; enforced on every grid point.
                        assert_eq!(
                            &report, reference,
                            "{name} N={n}: {column} diverged from the scalar reference"
                        );
                    }
                }
                if column == "scalar" {
                    scalar_rate = rate;
                }
                let speedup = rate / scalar_rate.max(1e-9);
                row.push_str(&format!("{rate:>12.0}"));
                points.push(Point {
                    fsm: name,
                    level: n,
                    column,
                    inj_per_s: rate,
                    speedup,
                });
            }
            let injections = reference.as_ref().map_or(0, |r| r.injections);
            println!("{name:<14} {n:>2} {injections:>10}  {row}  (inj/s)");
            let _ = cross_check; // divergence is asserted unconditionally above
        }
    }
    println!();
    points
}

/// Geometric-mean speedup over the grid for one backend column.
fn geomean_speedup(points: &[Point], column: &str) -> f64 {
    let logs: Vec<f64> = points
        .iter()
        .filter(|p| p.column == column)
        .map(|p| p.speedup.max(1e-9).ln())
        .collect();
    (logs.iter().sum::<f64>() / logs.len().max(1) as f64).exp()
}

fn write_baseline(points: &[Point]) {
    let mut json = String::from("{\n  \"grid\": \"Table-1 {aes_control, adc_ctrl_fsm, i2c_fsm} x N in {2,3,4}, exhaustive flips + register flips, 1 thread\",\n  \"control_overhead_budget\": 0.02,\n  \"telemetry_overhead_budget\": 0.02,\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"fsm\": \"{}\", \"level\": {}, \"backend\": \"{}\", \"inj_per_s\": {:.0}, \"speedup_vs_scalar\": {:.2}}}{}\n",
            p.fsm,
            p.level,
            p.column,
            p.inj_per_s,
            p.speedup,
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = baseline_path();
    std::fs::write(&path, json).expect("write BENCH_backends.json");
    println!("baseline written to {}", path.display());
}

/// Pulls `"speedup_vs_scalar": X` values for one backend out of the
/// committed baseline (minimal scan; the file is produced by
/// `write_baseline`, so the shape is fixed).
fn baseline_speedups(text: &str, column: &str) -> Vec<f64> {
    let needle = format!("\"backend\": \"{column}\"");
    text.lines()
        .filter(|l| l.contains(&needle))
        .filter_map(|l| {
            let v = l.split("\"speedup_vs_scalar\":").nth(1)?;
            v.trim()
                .trim_end_matches(['}', ',', ']'])
                .trim_end_matches('}')
                .trim()
                .parse()
                .ok()
        })
        .collect()
}

fn check_against_baseline(points: &[Point]) {
    let path = baseline_path();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => panic!(
            "missing baseline {} ({e}); regenerate with `cargo bench --bench backends -- --save`",
            path.display()
        ),
    };
    for (column, _, _) in COLUMNS.iter().skip(1) {
        let speedups = baseline_speedups(&text, column);
        assert!(
            !speedups.is_empty(),
            "baseline has no points for backend {column}"
        );
        let logs: f64 = speedups.iter().map(|s| s.max(1e-9).ln()).sum();
        let baseline = (logs / speedups.len() as f64).exp();
        let measured = geomean_speedup(points, column);
        println!(
            "{column:>12}: geomean speedup {measured:.2}x vs baseline {baseline:.2}x (floor {:.2}x)",
            0.8 * baseline
        );
        assert!(
            measured >= 0.8 * baseline,
            "{column}: geomean speedup {measured:.2}x regressed more than 20% below the \
             committed baseline {baseline:.2}x; investigate, or regenerate \
             BENCH_backends.json with `cargo bench --bench backends -- --save` \
             if the change is intentional"
        );
    }
}

/// Pulls one top-level budget fraction (`control_overhead_budget`,
/// `telemetry_overhead_budget`) out of the committed baseline.
fn budget_fraction(text: &str, key: &str) -> f64 {
    let quoted = format!("\"{key}\"");
    text.lines()
        .find(|l| l.contains(&quoted))
        .and_then(|l| {
            l.split(':')
                .nth(1)?
                .trim()
                .trim_end_matches(',')
                .parse()
                .ok()
        })
        .unwrap_or_else(|| {
            panic!(
                "BENCH_backends.json has no {key} key; \
                 regenerate with `cargo bench --bench backends -- --save`"
            )
        })
}

/// Satellite check for the execution-control layer: the per-wave
/// [`RunControl`] admission check must be free at campaign scale. Runs
/// the heaviest exhaustive W=4 row (i2c_fsm N=4, packed-256) with an
/// armed-but-never-tripping control (deadline and injection budget both
/// set) against the plain uncontrolled entry point, best-of-3 each, and
/// asserts the throughput ratio stays above `1 - control_overhead_budget`
/// from the committed baseline.
fn check_control_overhead() {
    let text = std::fs::read_to_string(baseline_path()).expect("committed baseline");
    let budget = budget_fraction(&text, "control_overhead_budget");
    let h = hardened("i2c_fsm", 4);
    let target = ScfiTarget::new(&h);
    let cfg = config(Backend::Packed, 4);
    let control = RunControl::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_injection_budget(u64::MAX / 2);
    let (mut plain, mut armed) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        let (_, rate) = run_point(&target, &cfg);
        plain = plain.max(rate);
        let start = Instant::now();
        let report =
            try_run_exhaustive(&target, &cfg, &control).expect("an unhit control never trips");
        let rate = report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9);
        armed = armed.max(rate);
    }
    let ratio = armed / plain.max(1e-9);
    println!(
        "control overhead (i2c_fsm N=4, packed-256): armed {armed:.0} vs plain {plain:.0} inj/s, \
         ratio {ratio:.3} (floor {:.3})",
        1.0 - budget
    );
    assert!(
        ratio >= 1.0 - budget,
        "per-wave control checks cost {:.1}% throughput on the exhaustive W=4 row, \
         over the {:.1}% budget (BENCH_backends.json control_overhead_budget)",
        (1.0 - ratio) * 100.0,
        budget * 100.0
    );
}

/// Satellite check for the telemetry layer: a recording [`Telemetry`]
/// handle on the campaign config costs per-worker plain-integer counts
/// merged once per run — it must be free at campaign scale. Runs the
/// same heaviest exhaustive W=4 row with a recording handle installed
/// against the uninstrumented config, best-of-3 each, and asserts the
/// throughput ratio stays above `1 - telemetry_overhead_budget` from
/// the committed baseline.
fn check_telemetry_overhead() {
    let text = std::fs::read_to_string(baseline_path()).expect("committed baseline");
    let budget = budget_fraction(&text, "telemetry_overhead_budget");
    let h = hardened("i2c_fsm", 4);
    let target = ScfiTarget::new(&h);
    let plain_cfg = config(Backend::Packed, 4);
    let recording_cfg = plain_cfg.clone().telemetry(Telemetry::recording());
    let (mut plain, mut recorded) = (0.0f64, 0.0f64);
    for _ in 0..3 {
        let (_, rate) = run_point(&target, &plain_cfg);
        plain = plain.max(rate);
        let (_, rate) = run_point(&target, &recording_cfg);
        recorded = recorded.max(rate);
    }
    let ratio = recorded / plain.max(1e-9);
    println!(
        "telemetry overhead (i2c_fsm N=4, packed-256): recording {recorded:.0} vs off \
         {plain:.0} inj/s, ratio {ratio:.3} (floor {:.3})",
        1.0 - budget
    );
    assert!(
        ratio >= 1.0 - budget,
        "a recording telemetry handle costs {:.1}% throughput on the exhaustive W=4 row, \
         over the {:.1}% budget (BENCH_backends.json telemetry_overhead_budget)",
        (1.0 - ratio) * 100.0,
        budget * 100.0
    );
}

/// The scenario-dense depth-1 point: i2c_fsm has the most CFG edges, so
/// its wave mix has the highest distinct-scenario density per wave.
fn scenario_dense_point() {
    let h = hardened("i2c_fsm", 2);
    let target = scenario_dense_target(&h);
    let faults_only_regs = CampaignConfig::new()
        .effects(vec![])
        .with_register_flips()
        .threads(1);
    let (report, rate) = {
        let start = Instant::now();
        let report = run_exhaustive(&target, &faults_only_regs);
        let rate = report.injections as f64 / start.elapsed().as_secs_f64().max(1e-9);
        (report, rate)
    };
    if test_mode() {
        let scalar = run_exhaustive(&target, &faults_only_regs.clone().backend(Backend::Scalar));
        assert_eq!(
            report, scalar,
            "scenario-dense depth-1: packed and scalar backends disagree"
        );
    }
    println!(
        "scenario-dense depth-1 (i2c_fsm N=2, {} scenarios, register flips): {:.0} inj/s\n",
        FaultTarget::scenario_count(&target),
        rate
    );
}

fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("backends");
    // One representative grid point per backend keeps the measured set
    // small; the printed matrix above covers the full grid.
    let h = hardened("adc_ctrl_fsm", 3);
    let target = ScfiTarget::new(&h);
    for (column, backend, lane_words) in COLUMNS {
        let cfg = config(backend, lane_words);
        group.bench_function(format!("exhaustive_adc_ctrl_n3_{column}"), |b| {
            b.iter(|| run_exhaustive(&target, &cfg))
        });
    }
    // The satellite workload: scenario-dense waves, register flips only.
    let dense = scenario_dense_target(&h);
    let dense_cfg = CampaignConfig::new()
        .effects(vec![])
        .with_register_flips()
        .threads(1);
    group.bench_function("scenario_dense_depth1_adc_ctrl_n3_packed", |b| {
        b.iter(|| run_exhaustive(&dense, &dense_cfg))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_backends
}

fn main() {
    let points = measure_grid();
    scenario_dense_point();
    if save_mode() {
        write_baseline(&points);
        return;
    }
    if test_mode() {
        check_against_baseline(&points);
        check_control_overhead();
        check_telemetry_overhead();
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
