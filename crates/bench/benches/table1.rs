//! Regenerates **Table 1** of the SCFI paper: area overhead for protecting
//! the seven OpenTitan FSMs with N-fold redundancy vs SCFI, N ∈ {2, 3, 4}.
//!
//! Run with `cargo bench -p scfi-bench --bench table1`. The table prints
//! first; a small Criterion group then times the hardening pass itself.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use scfi_bench::{geometric_mean, table1_rows};
use scfi_core::{harden, ScfiConfig};

fn print_table1() {
    println!("\n=== Table 1: area overhead, redundancy vs SCFI ===");
    println!(
        "{:<18} {:>12}  {:>6} {:>6} {:>6}  {:>6} {:>6} {:>6}",
        "", "Unprotected", "Red", "Red", "Red", "SCFI", "SCFI", "SCFI"
    );
    println!(
        "{:<18} {:>12}  {:>6} {:>6} {:>6}  {:>6} {:>6} {:>6}",
        "Module", "Area [GE]", "N=2", "N=3", "N=4", "N=2", "N=3", "N=4"
    );
    let rows = table1_rows();
    let mut red_cols: [Vec<f64>; 3] = Default::default();
    let mut scfi_cols: [Vec<f64>; 3] = Default::default();
    for row in &rows {
        println!(
            "{:<18} {:>12.0}  {:>6.0} {:>6.0} {:>6.0}  {:>6.0} {:>6.0} {:>6.0}",
            row.name,
            row.unprotected_ge,
            row.redundancy_pct[0],
            row.redundancy_pct[1],
            row.redundancy_pct[2],
            row.scfi_pct[0],
            row.scfi_pct[1],
            row.scfi_pct[2],
        );
        for i in 0..3 {
            red_cols[i].push(row.redundancy_pct[i]);
            scfi_cols[i].push(row.scfi_pct[i]);
        }
    }
    println!(
        "{:<18} {:>12}  {:>6.1} {:>6.1} {:>6.1}  {:>6.1} {:>6.1} {:>6.1}",
        "Geometric Mean",
        "",
        geometric_mean(&red_cols[0]),
        geometric_mean(&red_cols[1]),
        geometric_mean(&red_cols[2]),
        geometric_mean(&scfi_cols[0]),
        geometric_mean(&scfi_cols[1]),
        geometric_mean(&scfi_cols[2]),
    );
    println!(
        "{:<18} {:>12}  {:>6.1} {:>6.1} {:>6.1}  {:>6.1} {:>6.1} {:>6.1}",
        "(paper)", "", 17.5, 42.9, 67.6, 9.6, 21.8, 27.1
    );
    println!("Shape checks: SCFI geomean < redundancy geomean at every N;");
    println!("otbn_controller is the configuration where SCFI >= redundancy (fixed MDS cost).\n");
}

fn bench_transforms(c: &mut Criterion) {
    let suite = scfi_opentitan::all();
    let adc = suite
        .iter()
        .find(|b| b.name == "adc_ctrl_fsm")
        .expect("suite");
    let i2c = suite.iter().find(|b| b.name == "i2c_fsm").expect("suite");
    let mut group = c.benchmark_group("table1");
    group.bench_function("harden_adc_ctrl_n3", |b| {
        b.iter(|| harden(&adc.fsm, &ScfiConfig::new(3)).expect("harden"))
    });
    group.bench_function("harden_i2c_n4", |b| {
        b.iter(|| harden(&i2c.fsm, &ScfiConfig::new(4)).expect("harden"))
    });
    group.bench_function("redundancy_adc_ctrl_n3", |b| {
        b.iter(|| scfi_core::redundancy(&adc.fsm, 3).expect("redundancy"))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_transforms
}

fn main() {
    print_table1();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
