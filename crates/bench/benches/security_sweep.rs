//! Regenerates the **§6.3 security evaluation** as a measurable sweep:
//! sampled multi-fault campaigns (1 to 4 simultaneous faults) against the
//! unprotected FSM, the redundancy baseline, and SCFI at N ∈ {2, 3, 4}.
//!
//! The paper argues FT1/FT2 faults below N flips are always detected and
//! quantifies the in-logic success probability; the sweep shows the shape:
//! the unprotected escape rate is orders of magnitude above both schemes,
//! and SCFI's rate stays flat (probabilistic detection) while matching or
//! beating redundancy as the multiplicity grows.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, redundancy, ScfiConfig};
use scfi_faultsim::{
    paper_success_probability, run_multi_fault, CampaignConfig, RedundancyTarget, ScfiTarget,
    UnprotectedTarget,
};
use scfi_fsm::lower_unprotected;

const RUNS: usize = 4000;

fn print_sweep() {
    let bench = scfi_opentitan::by_name("ibex_lsu").expect("suite entry");
    let fsm = &bench.fsm;
    let lowered = lower_unprotected(fsm).expect("lowering");

    println!("\n=== §6.3 security sweep: escape rate vs fault multiplicity (ibex_lsu) ===");
    println!("{RUNS} sampled runs per cell; faults are transient flips on random gate outputs");
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8}",
        "configuration", "1 fault", "2 faults", "3 faults", "4 faults"
    );

    let unprot_target = UnprotectedTarget::new(fsm, &lowered);
    let mut row = format!("{:<22}", "unprotected");
    for m in 1..=4 {
        let r = run_multi_fault(
            &unprot_target,
            m,
            RUNS,
            &CampaignConfig::new().seed(100 + m as u64),
        );
        row.push_str(&format!(" {:>7.2}%", 100.0 * r.hijack_rate()));
    }
    println!("{row}");

    for n in [2usize, 3, 4] {
        let red = redundancy(fsm, n).expect("redundancy");
        let target = RedundancyTarget::new(&red);
        let mut row = format!("{:<22}", format!("redundancy N={n}"));
        for m in 1..=4 {
            let r = run_multi_fault(
                &target,
                m,
                RUNS,
                &CampaignConfig::new().seed(200 + (10 * n + m) as u64),
            );
            row.push_str(&format!(" {:>7.2}%", 100.0 * r.hijack_rate()));
        }
        println!("{row}");
    }

    for n in [2usize, 3, 4] {
        let hardened = harden(fsm, &ScfiConfig::new(n)).expect("harden");
        let target = ScfiTarget::new(&hardened);
        let mut row = format!("{:<22}", format!("SCFI N={n}"));
        for m in 1..=4 {
            let r = run_multi_fault(
                &target,
                m,
                RUNS,
                &CampaignConfig::new().seed(300 + (10 * n + m) as u64),
            );
            row.push_str(&format!(" {:>7.2}%", 100.0 * r.hijack_rate()));
        }
        println!(
            "{row}   (analytic P = {:.2e})",
            paper_success_probability(&hardened)
        );
    }
    println!("shape: unprotected >> redundancy/SCFI; SCFI stays low as multiplicity grows\n");
}

fn bench_multi_fault(c: &mut Criterion) {
    let bench = scfi_opentitan::by_name("ibex_lsu").expect("suite entry");
    let hardened = harden(&bench.fsm, &ScfiConfig::new(2)).expect("harden");
    let mut group = c.benchmark_group("security_sweep");
    group.bench_function("multi_fault_1000_runs", |b| {
        let target = ScfiTarget::new(&hardened);
        b.iter(|| run_multi_fault(&target, 2, 1000, &CampaignConfig::new().seed(1)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_multi_fault
}

fn main() {
    print_sweep();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
