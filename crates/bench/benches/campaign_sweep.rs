//! Scale sweep: campaign throughput and escape rate across the
//! protection-level × FSM-size grid (the ROADMAP's "scale sweep
//! workload").
//!
//! For every point of N ∈ {2, 3, 4} × {small, medium, large} Table-1
//! FSMs, the exhaustive single-fault campaign (gate-output flips plus
//! stored-bit register flips, every CFG edge) runs on the 256-lane
//! packed engine and reports injections/second plus the §6.4 escape
//! rate. The sweep shows how the guarantee and the engine scale
//! together: injections grow with both axes (more edges × more cells),
//! while the escape rate stays in the sub-percent regime at every level.
//!
//! CI runs this bench with `--test` (one iteration per payload): the
//! sweep then also runs every point on the scalar reference engine and
//! asserts byte-identical `CampaignReport`s — cross-engine equality over
//! the whole grid, not just one workload.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{run_exhaustive, run_exhaustive_scalar, CampaignConfig, ScfiTarget};

/// Small / medium / large rows of Table 1 (7, 13 and 30 states).
const FSMS: [&str; 3] = ["aes_control", "adc_ctrl_fsm", "i2c_fsm"];
const LEVELS: [usize; 3] = [2, 3, 4];

fn hardened(name: &str, n: usize) -> HardenedFsm {
    let b = scfi_opentitan::by_name(name).expect("suite entry");
    harden(&b.fsm, &ScfiConfig::new(n)).expect("harden")
}

fn campaign_config() -> CampaignConfig {
    CampaignConfig::new().with_register_flips().threads(1)
}

/// `true` when the bench binary runs in CI's `--test` mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn print_sweep() {
    let config = campaign_config();
    let cross_check = test_mode();
    println!(
        "\n=== campaign scale sweep (exhaustive flips + register flips, 256 lanes, 1 thread) ==="
    );
    println!(
        "{:<14} {:>2} {:>7} {:>7} {:>10} {:>14} {:>10}{}",
        "fsm",
        "N",
        "states",
        "cells",
        "inject",
        "inj/s (packed)",
        "escape %",
        if cross_check {
            "  [scalar cross-check]"
        } else {
            ""
        }
    );
    for name in FSMS {
        for n in LEVELS {
            let h = hardened(name, n);
            let target = ScfiTarget::new(&h);
            let start = Instant::now();
            let report = run_exhaustive(&target, &config);
            let elapsed = start.elapsed();
            if cross_check {
                let scalar = run_exhaustive_scalar(&target, &config);
                assert_eq!(
                    report, scalar,
                    "{name} N={n}: packed and scalar engines disagree on the sweep grid"
                );
            }
            assert_eq!(
                report.injections,
                report.masked + report.detected + report.hijacked,
                "{name} N={n}: accounting must balance"
            );
            println!(
                "{:<14} {:>2} {:>7} {:>7} {:>10} {:>14.0} {:>9.3}%",
                name,
                n,
                h.fsm().state_count(),
                h.module().len(),
                report.injections,
                report.injections as f64 / elapsed.as_secs_f64(),
                100.0 * report.hijack_rate()
            );
        }
    }
    println!();
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_sweep");
    // One representative point per FSM size keeps the measured set small;
    // the printed sweep above covers the full grid.
    for name in FSMS {
        let h = hardened(name, 3);
        let target = ScfiTarget::new(&h);
        let config = campaign_config();
        group.bench_function(format!("packed_exhaustive_{name}_n3"), |b| {
            b.iter(|| run_exhaustive(&target, &config))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_sweep
}

fn main() {
    print_sweep();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
