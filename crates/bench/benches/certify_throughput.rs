//! Formal-certification throughput: how fast the `scfi-symbolic` BDD
//! engine proves (or refutes) fault sites, across the Table-1 suite and
//! protection levels.
//!
//! Two phases are timed separately, because they amortize differently:
//!
//! * **setup** — the fault-free symbolic evaluation plus the reachability
//!   least fixpoint, paid once per module;
//! * **per-site certification** — the cone-incremental faulty
//!   re-evaluation and the escape-BDD emptiness check, paid per fault.
//!
//! CI runs this bench with `--test` (one unmeasured iteration per
//! payload), which also asserts that the SCFI register-fault guarantee
//! proves (zero counterexamples) on every benchmarked FSM and level —
//! the bench target cannot rot into measuring a refuted claim.

use std::time::{Duration, Instant};

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, HardenedFsm, ScfiConfig};
use scfi_faultsim::{enumerate_faults, CampaignConfig, Fault};
use scfi_symbolic::Certifier;

/// FSMs spanning the suite's size range (7, 13 and 30 states).
const FSMS: [&str; 3] = ["aes_control", "adc_ctrl_fsm", "i2c_fsm"];
const LEVELS: [usize; 2] = [2, 3];

fn hardened(name: &str, n: usize) -> HardenedFsm {
    let b = scfi_opentitan::by_name(name).expect("suite entry");
    harden(&b.fsm, &ScfiConfig::new(n)).expect("harden")
}

/// The FT1 register fault space (stored-bit flips + register-output
/// flips) shared with the campaigns and the conformance suite.
fn register_faults(h: &HardenedFsm) -> Vec<Fault> {
    enumerate_faults(
        h.module(),
        &CampaignConfig::new().register_region(h.module()),
    )
}

/// The whole-module flip space — every gate output plus the registers.
fn all_gate_faults(h: &HardenedFsm) -> Vec<Fault> {
    enumerate_faults(h.module(), &CampaignConfig::new().with_register_flips())
}

fn print_throughput() {
    println!("\n=== formal certification throughput (scfi-symbolic) ===");
    println!(
        "{:<14} {:>2} {:>6} {:>10} {:>12} {:>12} {:>8}",
        "fsm", "N", "cells", "setup", "reg sites/s", "gate sites/s", "escapes"
    );
    for name in FSMS {
        for n in LEVELS {
            let h = hardened(name, n);
            let start = Instant::now();
            let mut certifier = Certifier::new(&h);
            let setup = start.elapsed();

            let reg_faults = register_faults(&h);
            let start = Instant::now();
            let reg_report = certifier.certify_all(&reg_faults);
            let reg_time = start.elapsed();
            assert!(
                reg_report.all_proven(),
                "{name} N={n}: register guarantee must prove: {reg_report}"
            );

            let gate_faults = all_gate_faults(&h);
            let start = Instant::now();
            let gate_report = certifier.certify_all(&gate_faults);
            let gate_time = start.elapsed();

            println!(
                "{:<14} {:>2} {:>6} {:>10.2?} {:>12.0} {:>12.0} {:>8}",
                name,
                n,
                h.module().len(),
                setup,
                reg_faults.len() as f64 / reg_time.as_secs_f64(),
                gate_faults.len() as f64 / gate_time.as_secs_f64(),
                gate_report.counterexamples()
            );
        }
    }
    println!();
}

fn bench_certifier(c: &mut Criterion) {
    let mut group = c.benchmark_group("certify_throughput");
    for name in ["aes_control", "i2c_fsm"] {
        let h = hardened(name, 3);
        group.bench_function(format!("setup_{name}_n3"), |b| {
            b.iter(|| Certifier::new(&h).reachable_state_count())
        });
        let faults = register_faults(&h);
        group.bench_function(format!("register_sites_{name}_n3"), |b| {
            // A fresh certifier per iteration: reusing one would turn
            // iterations 2+ into pure ite-memo hits and measure cache
            // lookups, not certification (setup cost is reported by the
            // `setup_` benchmark above, so the difference is per-site).
            b.iter(|| Certifier::new(&h).certify_all(&faults).proven_detected())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_certifier
}

fn main() {
    print_throughput();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
