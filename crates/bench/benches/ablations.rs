//! Ablations over the design choices DESIGN.md calls out:
//!
//! * **MDS matrix choice** (§5.1 "the choice of MDS matrix can be changed
//!   according to design requirements"): lightweight searched matrix vs
//!   AES MixColumns — area and escape rate.
//! * **XOR lowering**: naive balanced trees vs Paar common-subexpression
//!   sharing — diffusion XOR count and module area.
//! * **Error-bit count `e`** (§4.1 "depending on the required fault
//!   security"): area vs diffusion-layer escape rate as `e` grows.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use scfi_core::{harden, PadPolicy, ScfiConfig};
use scfi_faultsim::{run_exhaustive, CampaignConfig, FaultEffect, ScfiTarget};
use scfi_mds::{Lowering, MdsSpec};
use scfi_stdcell::Library;

fn diffusion_escape(h: &scfi_core::HardenedFsm) -> f64 {
    let report = run_exhaustive(
        &ScfiTarget::new(h),
        &CampaignConfig::new()
            .effects(vec![FaultEffect::Flip])
            .region(h.regions().diffusion.clone())
            .with_pin_faults()
            .threads(2),
    );
    report.hijack_rate()
}

fn print_ablations() {
    let lib = Library::nangate45_like();
    let fsm = scfi_opentitan::synfi_formal_fsm();

    println!("\n=== Ablation A: MDS matrix choice (aes_control, N=2) ===");
    println!(
        "{:<22} {:>10} {:>12} {:>14}",
        "matrix", "area [GE]", "xors (Paar)", "escape rate"
    );
    for spec in [MdsSpec::ScfiLightweight, MdsSpec::AesMixColumns] {
        let h = harden(&fsm, &ScfiConfig::new(2).mds(spec)).expect("harden");
        let area = lib.map(h.module()).area_ge();
        println!(
            "{:<22} {:>10.0} {:>12} {:>13.3}%",
            spec.to_string(),
            area,
            spec.build().xor_count(Lowering::Paar),
            100.0 * diffusion_escape(&h)
        );
    }

    println!("\n=== Ablation B: XOR lowering strategy (aes_control, N=2) ===");
    println!(
        "{:<22} {:>14} {:>10} {:>12}",
        "lowering", "diffusion xors", "area [GE]", "logic depth"
    );
    for lowering in [Lowering::Naive, Lowering::Paar] {
        let h = harden(&fsm, &ScfiConfig::new(2).lowering(lowering)).expect("harden");
        let area = lib.map(h.module()).area_ge();
        println!(
            "{:<22} {:>14} {:>10.0} {:>12}",
            format!("{lowering:?}"),
            h.report().diffusion_xors,
            area,
            h.report().stats.depth()
        );
    }

    println!("\n=== Ablation C: error bits per instance (aes_control, N=2) ===");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "error bits", "area [GE]", "mod width", "escape rate"
    );
    for e in [1usize, 2, 3, 4, 6] {
        let h = harden(&fsm, &ScfiConfig::new(2).error_bits(e)).expect("harden");
        let area = lib.map(h.module()).area_ge();
        println!(
            "{:<12} {:>10.0} {:>12} {:>13.3}%",
            e,
            area,
            h.report().mod_width,
            100.0 * diffusion_escape(&h)
        );
    }
    println!("shape: more error bits -> more area, monotonically fewer escapes");

    println!("\n=== Ablation D: MDS input padding policy (aes_control, N=2) ===");
    println!(
        "{:<12} {:>10} {:>16} {:>14}",
        "padding", "area [GE]", "diffusion cells", "escape rate"
    );
    for (label, policy) in [
        ("zero", PadPolicy::Zero),
        ("replicate", PadPolicy::Replicate),
    ] {
        let h = harden(&fsm, &ScfiConfig::new(2).pad(policy)).expect("harden");
        let area = lib.map(h.module()).area_ge();
        println!(
            "{:<12} {:>10.0} {:>16} {:>13.3}%",
            label,
            area,
            h.regions().diffusion.len(),
            100.0 * diffusion_escape(&h)
        );
    }
    println!("zero padding lets the optimizer fold unused matrix columns; replicate");
    println!("pays the paper's fixed 32-bit MDS cost (the otbn_controller effect)");

    println!("\n=== Ablation E: §7 future-work extensions (aes_control, N=2) ===");
    println!(
        "{:<28} {:>10} {:>12} {:>14}",
        "configuration", "area [GE]", "mds width", "escape rate"
    );
    let configs: [(&str, ScfiConfig); 4] = [
        ("baseline prototype", ScfiConfig::new(2)),
        ("adaptive MDS size", ScfiConfig::new(2).adaptive_mds(true)),
        ("2 selector rails", ScfiConfig::new(2).selector_rails(2)),
        (
            "protected outputs",
            ScfiConfig::new(2).protect_outputs(true),
        ),
    ];
    for (label, config) in configs {
        let h = harden(&fsm, &config).expect("harden");
        let area = lib.map(h.module()).area_ge();
        let whole = run_exhaustive(
            &ScfiTarget::new(&h),
            &CampaignConfig::new()
                .effects(vec![FaultEffect::Flip])
                .threads(2),
        );
        println!(
            "{:<28} {:>10.0} {:>12} {:>13.3}%",
            label,
            area,
            h.mds().width(),
            100.0 * whole.hijack_rate()
        );
    }
    println!("adaptive trades branch number for area (§7); rails harden the §7");
    println!("selector limitation; output protection extends detection to λ\n");
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.bench_function("mds_build_lightweight", |b| {
        // Cached after the first call; measures the cache path plus clone.
        b.iter(|| MdsSpec::ScfiLightweight.build())
    });
    group.bench_function("xor_lowering_paar", |b| {
        let mds = MdsSpec::ScfiLightweight.build();
        b.iter(|| mds.xor_program(Lowering::Paar))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    targets = bench_ablations
}

fn main() {
    print_ablations();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
