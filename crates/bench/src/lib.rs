//! Shared machinery for the benchmark harness that regenerates the SCFI
//! paper's tables and figures.
//!
//! Each `benches/*.rs` target prints the reproduction artifact (a table or
//! CSV series mirroring the paper) and then runs a small Criterion group
//! timing the underlying operation. This library hosts the computations so
//! they are unit-testable:
//!
//! * [`module_areas`] / [`table1_rows`] — Table 1 (area overhead of
//!   redundancy vs SCFI at N ∈ {2, 3, 4} over the seven OpenTitan-like
//!   FSMs),
//! * [`at_sweep`] — Figure 8 (area–time product sweep for `adc_ctrl_fsm`),
//! * [`synfi_experiment`] — the §6.4 formal fault analysis,
//! * [`geometric_mean`] — the Table 1 summary row.

use scfi_core::{harden, redundancy, HardenedFsm, PadPolicy, ScfiConfig};
use scfi_faultsim::{run_exhaustive, CampaignConfig, CampaignReport, FaultEffect, ScfiTarget};
use scfi_fsm::lower_unprotected;
use scfi_opentitan::BenchFsm;
use scfi_stdcell::Library;

/// Area results for one benchmark FSM at one protection level.
#[derive(Clone, Copy, Debug)]
pub struct ModuleAreas {
    /// Whole-module unprotected area (FSM + datapath profile), GE.
    pub unprotected: f64,
    /// Whole-module area with the N-fold redundancy baseline, GE.
    pub redundant: f64,
    /// Whole-module area with SCFI, GE.
    pub scfi: f64,
}

impl ModuleAreas {
    /// Redundancy overhead in percent, as Table 1 reports it.
    pub fn redundancy_overhead_pct(&self) -> f64 {
        100.0 * (self.redundant - self.unprotected) / self.unprotected
    }

    /// SCFI overhead in percent.
    pub fn scfi_overhead_pct(&self) -> f64 {
        100.0 * (self.scfi - self.unprotected) / self.unprotected
    }
}

/// Synthesizes all three §6.1 configurations of `bench` at protection level
/// `n` and returns module-level areas.
///
/// The non-FSM datapath area is profiled as
/// `max(0, paper_module_ge − mapped unprotected FSM area)` (substitution S5
/// in DESIGN.md): the FSM logic is genuinely synthesized and measured; only
/// the surrounding datapath is a constant.
///
/// # Panics
///
/// Panics if any transform fails (benchmark FSMs are known-good).
pub fn module_areas(bench: &BenchFsm, n: usize) -> ModuleAreas {
    let lib = Library::nangate45_like();
    let unprot = lower_unprotected(&bench.fsm).expect("lowering");
    let fsm_area = lib.map(unprot.module()).area_ge();
    let datapath = (bench.paper_module_ge - fsm_area).max(0.0);

    let red = redundancy(&bench.fsm, n).expect("redundancy");
    let red_area = lib.map(red.module()).area_ge();

    let hardened = harden(&bench.fsm, &ScfiConfig::new(n)).expect("harden");
    let scfi_area = lib.map(hardened.module()).area_ge();

    ModuleAreas {
        unprotected: datapath + fsm_area,
        redundant: datapath + red_area,
        scfi: datapath + scfi_area,
    }
}

/// One row of Table 1: overhead percentages for N = 2, 3, 4.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Module name.
    pub name: &'static str,
    /// Unprotected whole-module area (GE).
    pub unprotected_ge: f64,
    /// Redundancy overhead percent at N = 2, 3, 4.
    pub redundancy_pct: [f64; 3],
    /// SCFI overhead percent at N = 2, 3, 4.
    pub scfi_pct: [f64; 3],
}

/// Computes every row of Table 1.
pub fn table1_rows() -> Vec<Table1Row> {
    scfi_opentitan::all()
        .iter()
        .map(|bench| {
            let mut redundancy_pct = [0.0; 3];
            let mut scfi_pct = [0.0; 3];
            let mut unprotected_ge = 0.0;
            for (i, n) in [2usize, 3, 4].into_iter().enumerate() {
                let areas = module_areas(bench, n);
                unprotected_ge = areas.unprotected;
                redundancy_pct[i] = areas.redundancy_overhead_pct();
                scfi_pct[i] = areas.scfi_overhead_pct();
            }
            Table1Row {
                name: bench.name,
                unprotected_ge,
                redundancy_pct,
                scfi_pct,
            }
        })
        .collect()
}

/// Geometric mean of a percentage column, matching the paper's summary row
/// (values are shifted by 100 % so zero-overhead entries are well-defined).
pub fn geometric_mean(values: &[f64]) -> f64 {
    let product_log: f64 = values.iter().map(|v| (v / 100.0 + 1.0).ln()).sum();
    ((product_log / values.len() as f64).exp() - 1.0) * 100.0
}

/// One point of the Figure 8 sweep.
#[derive(Clone, Copy, Debug)]
pub struct AtPoint {
    /// Target clock period (ps).
    pub period_ps: f64,
    /// Whether the sizer met the target.
    pub met: bool,
    /// Whole-module area at that constraint (kGE).
    pub area_kge: f64,
}

/// Sweeps clock-period targets for one configuration of `bench` and
/// returns the area at each point — one Figure 8 curve.
///
/// `config` selects the curve: `None` = unprotected base, `Some((n,
/// true))` = redundancy N, `Some((n, false))` = SCFI N.
pub fn at_sweep(
    bench: &BenchFsm,
    config: Option<(usize, bool)>,
    periods_ps: &[f64],
) -> Vec<AtPoint> {
    let lib = Library::nangate45_like();
    let unprot = lower_unprotected(&bench.fsm).expect("lowering");
    let fsm_area = lib.map(unprot.module()).area_ge();
    let datapath = (bench.paper_module_ge - fsm_area).max(0.0);

    // Hold the synthesized module alive across the sweep.
    let red;
    let hardened;
    let module = match config {
        None => unprot.module(),
        Some((n, true)) => {
            red = redundancy(&bench.fsm, n).expect("redundancy");
            red.module()
        }
        Some((n, false)) => {
            hardened = harden(&bench.fsm, &ScfiConfig::new(n)).expect("harden");
            hardened.module()
        }
    };
    periods_ps
        .iter()
        .map(|&target| {
            let mut mapped = lib.map(module);
            let r = mapped.size_for_period(target);
            AtPoint {
                period_ps: target,
                met: r.met,
                area_kge: (datapath + r.area_ge) / 1000.0,
            }
        })
        .collect()
}

/// The §6.4 formal-analysis experiment: harden the 14-transition FSM at
/// protection level 2 and exhaustively flip every gate output and input
/// pin inside the MDS diffusion layer, across every CFG edge.
///
/// Uses [`PadPolicy::Replicate`] so the complete 32-bit matrix is under
/// test, matching the paper's fault surface (7644 injections into "all
/// available gates in the MDS matrix multiplication").
pub fn synfi_experiment() -> (HardenedFsm, CampaignReport) {
    let fsm = scfi_opentitan::synfi_formal_fsm();
    let hardened = harden(&fsm, &ScfiConfig::new(2).pad(PadPolicy::Replicate)).expect("harden");
    let report = {
        let target = ScfiTarget::new(&hardened);
        // Packed wave engine, one worker per CPU (the CampaignConfig
        // default); results are deterministic regardless of thread count.
        run_exhaustive(
            &target,
            &CampaignConfig::new()
                .effects(vec![FaultEffect::Flip])
                .region(hardened.regions().diffusion.clone())
                .with_pin_faults(),
        )
    };
    (hardened, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_matches_hand_computation() {
        // (1.10 * 1.21)^(1/2) - 1 ≈ 15.38 %
        let g = geometric_mean(&[10.0, 21.0]);
        assert!((g - 15.38).abs() < 0.05, "{g}");
        assert!(geometric_mean(&[0.0, 0.0]).abs() < 1e-9);
    }

    #[test]
    fn scfi_beats_redundancy_on_the_small_module() {
        // pwrmgr_fsm: FSM dominates the module; SCFI must be cheaper than
        // redundancy at every N, as in Table 1.
        let bench = scfi_opentitan::by_name("pwrmgr_fsm").unwrap();
        for n in [3, 4] {
            let a = module_areas(&bench, n);
            assert!(
                a.scfi_overhead_pct() < a.redundancy_overhead_pct(),
                "N={n}: scfi {:.1}% vs red {:.1}%",
                a.scfi_overhead_pct(),
                a.redundancy_overhead_pct()
            );
        }
    }

    #[test]
    fn overheads_are_positive_and_grow_with_n() {
        let bench = scfi_opentitan::by_name("ibex_lsu").unwrap();
        let a2 = module_areas(&bench, 2);
        let a4 = module_areas(&bench, 4);
        assert!(a2.redundancy_overhead_pct() > 0.0);
        assert!(a2.scfi_overhead_pct() > 0.0);
        assert!(a4.redundancy_overhead_pct() > a2.redundancy_overhead_pct());
        assert!(a4.scfi_overhead_pct() >= a2.scfi_overhead_pct() * 0.8);
    }

    #[test]
    fn at_sweep_area_decreases_with_relaxed_clock() {
        let bench = scfi_opentitan::by_name("adc_ctrl_fsm").unwrap();
        let points = at_sweep(&bench, Some((3, false)), &[3600.0, 6000.0]);
        assert_eq!(points.len(), 2);
        assert!(points[0].area_kge >= points[1].area_kge);
    }
}
