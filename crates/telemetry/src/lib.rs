//! Zero-dependency metrics and tracing core for the SCFI stack.
//!
//! Every engine in this repository — the wave-campaign executor, the
//! symbolic certifier, the `scfi serve` job server — reports its
//! internals through one [`Telemetry`] handle:
//!
//! * **Counters** — monotone event totals (`fetch_add` relaxed).
//! * **Gauges** — last-written values with a `fetch_max` high-water
//!   helper (BDD node-table peak, registry size).
//! * **Histograms** — fixed power-of-two buckets with approximate
//!   quantile estimation; used for latencies (nanoseconds) and sizes
//!   (gate counts).
//! * **Spans** — named wall-clock intervals collected for
//!   chrome://tracing export.
//!
//! The handle is designed around one invariant: **recording must never
//! change results, and a disabled handle must cost (almost) nothing**.
//! [`Telemetry::off`] carries no registry at all — every operation on a
//! handle, counter, gauge, histogram or span derived from it is a
//! branch on a `None` and nothing else. An enabled handle performs
//! relaxed atomic operations only; nothing in this crate blocks a hot
//! path on a lock (locks guard registration and rendering, both cold).
//!
//! Three renderers turn a recording registry into output:
//! [`Telemetry::render_prometheus`] (the `GET /v1/metrics` exposition
//! text), [`Telemetry::render_stats_text`] / [`render_stats_json`]
//! (the CLI `--stats` block), and [`Telemetry::render_chrome_trace`]
//! (the CLI `--trace-out` span dump).
//!
//! [`render_stats_json`]: Telemetry::render_stats_json

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Histogram bucket count: bucket `0` holds the value `0`, bucket `i`
/// (`1 ..= 64`) holds values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// Spans retained per registry; later spans are counted but dropped so
/// a long soak cannot grow memory without bound.
const MAX_SPANS: usize = 65_536;

/// One histogram's storage: power-of-two buckets plus sum and count.
struct HistogramCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        let idx = bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Maps a value to its bucket: `0 → 0`, otherwise the bit length.
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (the Prometheus `le` edge).
fn bucket_upper(i: usize) -> u128 {
    if i == 0 {
        0
    } else {
        (1u128 << i) - 1
    }
}

/// A point-in-time copy of one histogram, with quantile estimation.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Approximate `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the containing power-of-two bucket. Returns `0` when
    /// nothing was observed.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                if i == 0 {
                    return 0;
                }
                let lower = 1u64 << (i - 1);
                let position = (target - cumulative) as f64 / n as f64;
                let width = lower as f64;
                return lower + (width * position) as u64;
            }
            cumulative += n;
        }
        // Unreachable with a consistent snapshot; degrade to the sum's
        // mean rather than panicking on a torn relaxed read.
        self.sum / self.count
    }

    /// Mean of all observations (`0` when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// The shared recorder: named metric cells plus the span log.
struct Registry {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    spans: Mutex<Vec<SpanEvent>>,
    spans_dropped: AtomicU64,
}

/// One completed span, relative to the registry epoch.
#[derive(Clone, Debug)]
struct SpanEvent {
    name: &'static str,
    tid: u64,
    start_us: u64,
    dur_us: u64,
}

fn thread_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The cheap cross-layer telemetry handle.
///
/// Cloning shares the underlying registry; [`Telemetry::off`] (also the
/// [`Default`]) shares nothing and turns every recording operation into
/// a no-op. Components fetch named [`Counter`]/[`Gauge`]/[`Histogram`]
/// handles once (a cold, locked registration) and then record through
/// relaxed atomics only.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Telemetry(recording)"
        } else {
            "Telemetry(off)"
        })
    }
}

impl Telemetry {
    /// A recording handle with a fresh, empty registry.
    pub fn recording() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Registry {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(Vec::new()),
                spans_dropped: AtomicU64::new(0),
            })),
        }
    }

    /// The disabled handle: every derived operation is a no-op.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// `true` when a recorder is installed.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or finds) the counter `name` and returns its handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|r| {
                let mut map = r.counters.lock().expect("telemetry counters lock");
                Arc::clone(map.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Registers (or finds) the gauge `name` and returns its handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|r| {
                let mut map = r.gauges.lock().expect("telemetry gauges lock");
                Arc::clone(map.entry(name.to_string()).or_default())
            }),
        }
    }

    /// Registers (or finds) the histogram `name` and returns its handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|r| {
                let mut map = r.histograms.lock().expect("telemetry histograms lock");
                Arc::clone(
                    map.entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistogramCell::new())),
                )
            }),
        }
    }

    /// Starts a named span; the interval is recorded when the returned
    /// guard drops (and is a no-op on a disabled handle).
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            inner: self
                .inner
                .as_ref()
                .map(|r| (Arc::clone(r), name, Instant::now())),
        }
    }

    /// Records an already-measured interval as a completed span.
    pub fn record_span(&self, name: &'static str, start: Instant, duration: Duration) {
        if let Some(r) = &self.inner {
            r.push_span(name, start, duration);
        }
    }

    /// Renders every metric in Prometheus text exposition format
    /// (sorted by name; empty string on a disabled handle).
    pub fn render_prometheus(&self) -> String {
        let Some(r) = &self.inner else {
            return String::new();
        };
        let mut out = String::new();
        for (name, value) in snapshot_u64(&r.counters) {
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in snapshot_u64(&r.gauges) {
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, snap) in snapshot_histograms(&r.histograms) {
            let _ = writeln!(out, "# TYPE {name} histogram");
            let last = snap
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .unwrap_or(0)
                .min(BUCKETS - 1);
            let mut cumulative = 0u64;
            for i in 0..=last {
                cumulative += snap.buckets[i];
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
            let _ = writeln!(out, "{name}_sum {}", snap.sum);
            let _ = writeln!(out, "{name}_count {}", snap.count);
        }
        out
    }

    /// Renders the human-readable `--stats` block (empty on a disabled
    /// handle). Counters and gauges print sorted by name; histograms
    /// print count, mean and p50/p90/p99.
    pub fn render_stats_text(&self) -> String {
        let Some(r) = &self.inner else {
            return String::new();
        };
        let mut out = String::from("run stats:\n");
        for (name, value) in snapshot_u64(&r.counters) {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
        for (name, value) in snapshot_u64(&r.gauges) {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
        for (name, snap) in snapshot_histograms(&r.histograms) {
            let _ = writeln!(
                out,
                "  {name:<44} count {} mean {} p50 {} p90 {} p99 {}",
                snap.count,
                snap.mean(),
                snap.quantile(0.50),
                snap.quantile(0.90),
                snap.quantile(0.99)
            );
        }
        out
    }

    /// Renders the `--stats json` document: one object with `counters`,
    /// `gauges` and `histograms` members (`{}` on a disabled handle).
    pub fn render_stats_json(&self) -> String {
        let Some(r) = &self.inner else {
            return String::from("{}");
        };
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, value) in snapshot_u64(&r.counters) {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
            first = false;
        }
        out.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, value) in snapshot_u64(&r.gauges) {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{name}\": {value}");
            first = false;
        }
        out.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, snap) in snapshot_histograms(&r.histograms) {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                snap.count,
                snap.sum,
                snap.mean(),
                snap.quantile(0.50),
                snap.quantile(0.90),
                snap.quantile(0.99)
            );
            first = false;
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Renders recorded spans as a chrome://tracing document (the
    /// `{"traceEvents": [...]}` object form, `ph:"X"` complete events,
    /// microsecond timestamps relative to the registry epoch).
    pub fn render_chrome_trace(&self) -> String {
        let Some(r) = &self.inner else {
            return String::from("{\"traceEvents\": []}\n");
        };
        let spans = r.spans.lock().expect("telemetry spans lock");
        let mut out = String::from("{\"traceEvents\": [");
        for (i, s) in spans.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n  {{\"name\": \"{}\", \"cat\": \"scfi\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}}}",
                s.name, s.start_us, s.dur_us, s.tid
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Spans dropped because the per-registry retention cap was hit.
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |r| r.spans_dropped.load(Ordering::Relaxed))
    }
}

impl Registry {
    fn push_span(&self, name: &'static str, start: Instant, duration: Duration) {
        let start_us = start.saturating_duration_since(self.epoch).as_micros() as u64;
        let mut spans = self.spans.lock().expect("telemetry spans lock");
        if spans.len() >= MAX_SPANS {
            self.spans_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        spans.push(SpanEvent {
            name,
            tid: thread_tid(),
            start_us,
            dur_us: duration.as_micros() as u64,
        });
    }
}

fn snapshot_u64(map: &Mutex<BTreeMap<String, Arc<AtomicU64>>>) -> Vec<(String, u64)> {
    map.lock()
        .expect("telemetry metric lock")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
        .collect()
}

fn snapshot_histograms(
    map: &Mutex<BTreeMap<String, Arc<HistogramCell>>>,
) -> Vec<(String, HistogramSnapshot)> {
    map.lock()
        .expect("telemetry metric lock")
        .iter()
        .map(|(name, cell)| (name.clone(), cell.snapshot()))
        .collect()
}

/// A monotone event counter. Cheap to clone; a no-op when derived from
/// a disabled handle.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// Adds `n` (one relaxed `fetch_add`; nothing when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-value gauge with a high-water helper.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Stores `value` (relaxed; nothing when disabled).
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is higher (relaxed
    /// `fetch_max`) — the high-water-mark idiom.
    #[inline]
    pub fn record_max(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// The current value (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one observation (three relaxed `fetch_add`s; nothing
    /// when disabled).
    #[inline]
    pub fn observe(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.observe(value);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, duration: Duration) {
        self.observe(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// `true` when observations are actually recorded — lets callers
    /// skip computing an expensive observation value when disabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }

    /// A point-in-time copy (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell.as_ref().map_or(
            HistogramSnapshot {
                buckets: [0; BUCKETS],
                sum: 0,
                count: 0,
            },
            |c| c.snapshot(),
        )
    }
}

/// A live span; records its interval into the registry on drop.
pub struct Span {
    inner: Option<(Arc<Registry>, &'static str, Instant)>,
}

impl Span {
    /// The elapsed time so far (zero when disabled).
    pub fn elapsed(&self) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |(_, _, start)| start.elapsed())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((registry, name, start)) = self.inner.take() {
            registry.push_span(name, start, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_everywhere() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        let c = t.counter("scfi_x_total");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = t.gauge("scfi_x");
        g.set(7);
        g.record_max(9);
        assert_eq!(g.get(), 0);
        let h = t.histogram("scfi_x_ns");
        h.observe(123);
        assert_eq!(h.snapshot().count, 0);
        drop(t.span("nothing"));
        assert_eq!(t.render_prometheus(), "");
        assert_eq!(t.render_stats_text(), "");
        assert_eq!(t.render_stats_json(), "{}");
        assert_eq!(t.render_chrome_trace(), "{\"traceEvents\": []}\n");
    }

    #[test]
    fn counters_and_gauges_share_cells_by_name() {
        let t = Telemetry::recording();
        t.counter("scfi_events_total").add(2);
        t.counter("scfi_events_total").inc();
        assert_eq!(t.counter("scfi_events_total").get(), 3);
        let g = t.gauge("scfi_depth");
        g.set(4);
        g.record_max(2); // lower: ignored
        g.record_max(9); // higher: taken
        assert_eq!(t.gauge("scfi_depth").get(), 9);
    }

    #[test]
    fn histogram_quantiles_bracket_the_observations() {
        let t = Telemetry::recording();
        let h = t.histogram("scfi_size");
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1110);
        assert_eq!(snap.mean(), 185);
        let p50 = snap.quantile(0.50);
        assert!((2..=4).contains(&p50), "p50 = {p50}");
        let p99 = snap.quantile(0.99);
        assert!((512..=1024).contains(&p99), "p99 = {p99}");
        // Zero is its own bucket.
        h.observe(0);
        assert_eq!(h.snapshot().quantile(0.01), 0);
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value is ≤ its bucket's inclusive upper bound and > the
        // previous bucket's.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, u64::MAX] {
            let i = bucket_index(v);
            assert!(u128::from(v) <= bucket_upper(i), "{v} in bucket {i}");
            if i > 0 {
                assert!(u128::from(v) > bucket_upper(i - 1), "{v} above bucket {i}");
            }
        }
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let t = Telemetry::recording();
        t.counter("scfi_requests_total").add(3);
        t.gauge("scfi_queue_depth").set(2);
        let h = t.histogram("scfi_latency_ns");
        h.observe(10);
        h.observe(2000);
        let text = t.render_prometheus();
        assert!(text.contains("# TYPE scfi_requests_total counter"));
        assert!(text.contains("scfi_requests_total 3"));
        assert!(text.contains("# TYPE scfi_queue_depth gauge"));
        assert!(text.contains("scfi_queue_depth 2"));
        assert!(text.contains("# TYPE scfi_latency_ns histogram"));
        assert!(text.contains("scfi_latency_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("scfi_latency_ns_sum 2010"));
        assert!(text.contains("scfi_latency_ns_count 2"));
        // Bucket lines are cumulative and end at the count.
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("scfi_latency_ns_bucket"))
            .expect("bucket lines");
        assert!(last_bucket.ends_with(" 2"), "{last_bucket}");
        // Every non-comment line is `name[{le=...}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().expect("value");
            assert!(value.parse::<u64>().is_ok(), "numeric sample value: {line}");
            assert!(parts.next().is_some(), "named series: {line}");
        }
    }

    #[test]
    fn stats_renderers_cover_all_metric_kinds() {
        let t = Telemetry::recording();
        t.counter("scfi_waves_total").add(7);
        t.gauge("scfi_nodes_high_water").record_max(42);
        t.histogram("scfi_cone_gates").observe(16);
        let text = t.render_stats_text();
        assert!(text.starts_with("run stats:\n"));
        assert!(text.contains("scfi_waves_total"));
        assert!(text.contains("scfi_nodes_high_water"));
        assert!(text.contains("p99"));
        let json = t.render_stats_json();
        assert!(json.contains("\"scfi_waves_total\": 7"));
        assert!(json.contains("\"scfi_nodes_high_water\": 42"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn spans_appear_in_the_chrome_trace() {
        let t = Telemetry::recording();
        {
            let _span = t.span("certify.setup");
            std::thread::sleep(Duration::from_millis(1));
        }
        t.record_span("campaign.run", Instant::now(), Duration::from_micros(1500));
        let trace = t.render_chrome_trace();
        assert!(trace.contains("\"name\": \"certify.setup\""));
        assert!(trace.contains("\"name\": \"campaign.run\""));
        assert!(trace.contains("\"ph\": \"X\""));
        assert!(trace.contains("\"dur\": 1500"));
        assert_eq!(trace.matches('{').count(), trace.matches('}').count());
        assert_eq!(t.spans_dropped(), 0);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::recording();
        let clone = t.clone();
        clone.counter("scfi_shared_total").add(5);
        assert_eq!(t.counter("scfi_shared_total").get(), 5);
        assert!(clone.enabled());
    }
}
